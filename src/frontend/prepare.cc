#include "frontend/prepare.h"

#include <functional>
#include <utility>

#include "exec/expr_eval.h"
#include "parser/ast_util.h"

namespace taurus {

namespace {

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

Status FoldExpr(std::unique_ptr<Expr>* expr);

Status FoldChildren(Expr* e) {
  for (auto& child : e->children) {
    TAURUS_RETURN_IF_ERROR(FoldExpr(&child));
  }
  return Status::OK();
}

Status FoldExpr(std::unique_ptr<Expr>* expr) {
  Expr* e = expr->get();
  TAURUS_RETURN_IF_ERROR(FoldChildren(e));
  if (e->kind == Expr::Kind::kLiteral) return Status::OK();
  // Do not fold away boolean connectives wholesale — only scalar leaves of
  // predicates matter, and folding AND/OR trees would lose structure the
  // optimizers use. Everything else that is constant folds.
  if (e->kind == Expr::Kind::kBinary &&
      (e->bop == BinaryOp::kAnd || e->bop == BinaryOp::kOr)) {
    return Status::OK();
  }
  if (!IsConstExpr(*e)) return Status::OK();
  auto folded = EvalConstExpr(*e);
  if (!folded.ok()) return Status::OK();  // leave non-foldable intact
  TypeId ty = e->result_type;
  *expr = MakeLiteral(std::move(folded).value());
  (*expr)->result_type = ty;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// NOT pushdown (normalization)
// ---------------------------------------------------------------------------

/// Rewrites NOT over predicates into negated forms: NOT EXISTS ->
/// EXISTS(negated), NOT (a < b) -> a >= b, NOT NOT x -> x, NOT (x IS NULL)
/// -> x IS NOT NULL. This mirrors MySQL's Prepare-phase condition
/// normalization and is what lets the semi-join conversion see NOT EXISTS
/// conjuncts.
Status NormalizeNot(std::unique_ptr<Expr>* slot) {
  Expr* e = slot->get();
  for (auto& child : e->children) {
    TAURUS_RETURN_IF_ERROR(NormalizeNot(&child));
  }
  if (e->kind != Expr::Kind::kUnary || e->uop != UnaryOp::kNot) {
    return Status::OK();
  }
  Expr* c = e->children[0].get();
  switch (c->kind) {
    case Expr::Kind::kExists:
    case Expr::Kind::kInSubquery:
    case Expr::Kind::kInList:
    case Expr::Kind::kLike:
    case Expr::Kind::kBetween:
      c->negated = !c->negated;
      *slot = std::move(e->children[0]);
      return Status::OK();
    case Expr::Kind::kUnary:
      if (c->uop == UnaryOp::kNot) {
        *slot = std::move(c->children[0]);
        return NormalizeNot(slot);
      }
      if (c->uop == UnaryOp::kIsNull) {
        c->uop = UnaryOp::kIsNotNull;
        *slot = std::move(e->children[0]);
        return Status::OK();
      }
      if (c->uop == UnaryOp::kIsNotNull) {
        c->uop = UnaryOp::kIsNull;
        *slot = std::move(e->children[0]);
        return Status::OK();
      }
      return Status::OK();
    case Expr::Kind::kBinary:
      if (IsComparisonOp(c->bop)) {
        c->bop = InverseComparison(c->bop);
        *slot = std::move(e->children[0]);
      }
      return Status::OK();
    default:
      return Status::OK();
  }
}

// ---------------------------------------------------------------------------
// Block traversal helpers
// ---------------------------------------------------------------------------

/// Applies `fn` to every expression slot of a block (not recursing into
/// nested blocks — the caller drives block recursion).
Status ForEachExprSlot(QueryBlock* block,
                       const std::function<Status(std::unique_ptr<Expr>*)>& fn);

Status ForEachJoinOn(TableRef* ref,
                     const std::function<Status(std::unique_ptr<Expr>*)>& fn) {
  if (ref->kind != TableRef::Kind::kJoin) return Status::OK();
  if (ref->on) TAURUS_RETURN_IF_ERROR(fn(&ref->on));
  TAURUS_RETURN_IF_ERROR(ForEachJoinOn(ref->left.get(), fn));
  return ForEachJoinOn(ref->right.get(), fn);
}

Status ForEachExprSlot(
    QueryBlock* block,
    const std::function<Status(std::unique_ptr<Expr>*)>& fn) {
  for (auto& item : block->select_items) {
    TAURUS_RETURN_IF_ERROR(fn(&item.expr));
  }
  if (block->where) TAURUS_RETURN_IF_ERROR(fn(&block->where));
  for (auto& g : block->group_by) TAURUS_RETURN_IF_ERROR(fn(&g));
  if (block->having) TAURUS_RETURN_IF_ERROR(fn(&block->having));
  for (auto& o : block->order_by) TAURUS_RETURN_IF_ERROR(fn(&o.expr));
  for (auto& t : block->from) {
    TAURUS_RETURN_IF_ERROR(ForEachJoinOn(t.get(), fn));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// EXISTS / IN  ->  semi / anti-semi join
// ---------------------------------------------------------------------------

/// True when the subquery block has a shape convertible to a semi-join:
/// plain SELECT over tables with a WHERE, nothing else.
bool SubqueryConvertible(const QueryBlock& sub) {
  if (sub.from.empty()) return false;
  if (!sub.group_by.empty() || sub.having != nullptr) return false;
  if (sub.limit >= 0 || sub.offset > 0) return false;
  if (sub.union_next != nullptr) return false;
  if (!sub.ctes.empty()) return false;
  for (const auto& item : sub.select_items) {
    if (ContainsAggregate(*item.expr)) return false;
  }
  // Derived tables inside the subquery are fine; windowed/ordered
  // subqueries in EXISTS are meaningless and simply dropped by MySQL, but
  // we keep them on the subplan path for safety.
  if (!sub.order_by.empty()) return false;
  return true;
}

/// For NOT IN, anti-semi conversion is only legal when neither side can be
/// NULL (MySQL checks column nullability; Section 4.1).
bool ExprNonNullable(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return !e.literal.is_null();
    case Expr::Kind::kColumnRef: {
      // Binding stored only type info; treat columns as non-nullable when
      // the owning table declares them NOT NULL. We can't reach the
      // ColumnDef from here without the leaf, so be permissive for base
      // table refs resolved through the binder: the binder rewired
      // result_type but nullability travels via `column_nullable`.
      return e.column_nullable == false;
    }
    default:
      return false;
  }
}

/// Combines a FROM list into a single join tree (comma list = inner join
/// with no condition, i.e. cross product constrained by WHERE).
std::unique_ptr<TableRef> CombineFromList(
    std::vector<std::unique_ptr<TableRef>> list) {
  std::unique_ptr<TableRef> acc = std::move(list[0]);
  for (size_t i = 1; i < list.size(); ++i) {
    auto join = std::make_unique<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_type = JoinType::kInner;
    join->left = std::move(acc);
    join->right = std::move(list[i]);
    acc = std::move(join);
  }
  return acc;
}

void ReownLeaves(TableRef* ref, QueryBlock* new_owner) {
  if (ref->kind == TableRef::Kind::kJoin) {
    ReownLeaves(ref->left.get(), new_owner);
    ReownLeaves(ref->right.get(), new_owner);
  } else {
    ref->owner = new_owner;
  }
}

std::unique_ptr<Expr> AndExprs(std::unique_ptr<Expr> a,
                               std::unique_ptr<Expr> b) {
  if (!a) return b;
  if (!b) return a;
  auto e = MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
  e->result_type = TypeId::kTiny;
  return e;
}

/// Attempts to convert one WHERE conjunct (EXISTS / IN subquery) into a
/// semi/anti-semi join appended to `block`'s FROM tree. Returns true when
/// converted.
bool TryConvertSubqueryConjunct(QueryBlock* block,
                                std::unique_ptr<Expr>* conjunct) {
  Expr* e = conjunct->get();
  JoinType jt;
  std::unique_ptr<Expr> extra_on;
  if (e->kind == Expr::Kind::kExists) {
    jt = e->negated ? JoinType::kAntiSemi : JoinType::kSemi;
  } else if (e->kind == Expr::Kind::kInSubquery) {
    jt = e->negated ? JoinType::kAntiSemi : JoinType::kSemi;
    if (e->negated) {
      // NOT IN: NULL on either side changes semantics; require provably
      // non-nullable operands.
      if (!ExprNonNullable(*e->children[0]) ||
          !ExprNonNullable(*e->subquery->select_items[0].expr)) {
        return false;
      }
    }
  } else {
    return false;
  }
  QueryBlock* sub = e->subquery.get();
  if (!SubqueryConvertible(*sub)) return false;

  if (e->kind == Expr::Kind::kInSubquery) {
    extra_on = MakeBinary(BinaryOp::kEq, std::move(e->children[0]),
                          sub->select_items[0].expr->Clone());
    extra_on->result_type = TypeId::kTiny;
  }

  // Assemble: (current FROM) SEMI JOIN (subquery FROM) ON (sub WHERE [+ eq]).
  std::unique_ptr<TableRef> left = CombineFromList(std::move(block->from));
  block->from.clear();
  std::unique_ptr<TableRef> right = CombineFromList(std::move(sub->from));
  ReownLeaves(right.get(), block);

  auto join = std::make_unique<TableRef>();
  join->kind = TableRef::Kind::kJoin;
  join->join_type = jt;
  join->left = std::move(left);
  join->right = std::move(right);
  join->on = AndExprs(std::move(sub->where), std::move(extra_on));
  block->from.push_back(std::move(join));

  conjunct->reset();  // conjunct consumed
  return true;
}

Status ConvertSubqueries(QueryBlock* block) {
  if (block->where == nullptr) return Status::OK();
  // Pull the WHERE apart into owned conjuncts.
  std::vector<std::unique_ptr<Expr>> conjuncts;
  {
    std::vector<Expr*> flat;
    SplitConjunctsMutable(block->where.get(), &flat);
    if (flat.size() == 1) {
      conjuncts.push_back(std::move(block->where));
    } else {
      // Reconstruct ownership of each conjunct by detaching from the AND
      // tree. Simplest correct approach: clone each conjunct, then drop
      // the original tree (bound state is copied by Clone).
      for (Expr* c : flat) conjuncts.push_back(c->Clone());
      block->where.reset();
    }
  }
  for (auto& c : conjuncts) {
    if (c == nullptr) continue;
    TryConvertSubqueryConjunct(block, &c);
  }
  // Rebuild WHERE from surviving conjuncts.
  std::unique_ptr<Expr> where;
  for (auto& c : conjuncts) {
    if (c != nullptr) where = AndExprs(std::move(where), std::move(c));
  }
  block->where = std::move(where);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LEFT JOIN -> INNER JOIN simplification
// ---------------------------------------------------------------------------

/// True when the conjunct rejects NULL-extended rows of leaf `ref_id`
/// (i.e. it cannot evaluate to TRUE when every column of that leaf is
/// NULL).
bool NullRejecting(const Expr& e, int ref_id, int num_refs) {
  switch (e.kind) {
    case Expr::Kind::kBinary:
      if (!IsComparisonOp(e.bop)) return false;
      break;
    case Expr::Kind::kLike:
    case Expr::Kind::kBetween:
      break;
    case Expr::Kind::kInList:
      if (e.negated) break;  // NOT IN over NULL is NULL -> rejected
      break;
    default:
      return false;
  }
  if (ContainsSubquery(e)) return false;
  std::vector<bool> refs(static_cast<size_t>(num_refs), false);
  CollectReferencedRefs(e, &refs);
  return ref_id >= 0 && static_cast<size_t>(ref_id) < refs.size() &&
         refs[static_cast<size_t>(ref_id)];
}

void CollectLeafIds(const TableRef& ref, std::vector<int>* out) {
  if (ref.kind == TableRef::Kind::kJoin) {
    CollectLeafIds(*ref.left, out);
    CollectLeafIds(*ref.right, out);
  } else {
    out->push_back(ref.ref_id);
  }
}

void SimplifyOuterJoins(TableRef* ref, const std::vector<bool>& rejected) {
  if (ref->kind != TableRef::Kind::kJoin) return;
  if (ref->join_type == JoinType::kLeft) {
    std::vector<int> inner_leaves;
    CollectLeafIds(*ref->right, &inner_leaves);
    for (int id : inner_leaves) {
      if (id >= 0 && static_cast<size_t>(id) < rejected.size() &&
          rejected[static_cast<size_t>(id)]) {
        ref->join_type = JoinType::kInner;
        break;
      }
    }
  }
  SimplifyOuterJoins(ref->left.get(), rejected);
  SimplifyOuterJoins(ref->right.get(), rejected);
}

Status SimplifyBlockOuterJoins(QueryBlock* block, int num_refs) {
  if (block->where == nullptr) return Status::OK();
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(block->where.get(), &conjuncts);
  std::vector<bool> rejected(static_cast<size_t>(num_refs), false);
  for (const Expr* c : conjuncts) {
    for (int id = 0; id < num_refs; ++id) {
      if (!rejected[static_cast<size_t>(id)] &&
          NullRejecting(*c, id, num_refs)) {
        rejected[static_cast<size_t>(id)] = true;
      }
    }
  }
  for (auto& t : block->from) SimplifyOuterJoins(t.get(), rejected);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

Status PrepareBlock(QueryBlock* block, const PrepareOptions& opts,
                    int num_refs) {
  // Bottom-up: nested blocks first (derived tables and expression
  // subqueries), so that conversions see already-prepared children.
  for (TableRef* leaf : block->Leaves()) {
    if (leaf->kind == TableRef::Kind::kDerived) {
      TAURUS_RETURN_IF_ERROR(PrepareBlock(leaf->derived.get(), opts, num_refs));
    }
  }
  std::function<Status(Expr*)> prep_subqueries = [&](Expr* e) -> Status {
    for (auto& c : e->children) TAURUS_RETURN_IF_ERROR(prep_subqueries(c.get()));
    if (e->subquery) {
      TAURUS_RETURN_IF_ERROR(PrepareBlock(e->subquery.get(), opts, num_refs));
    }
    return Status::OK();
  };
  TAURUS_RETURN_IF_ERROR(ForEachExprSlot(
      block, [&](std::unique_ptr<Expr>* slot) -> Status {
        return prep_subqueries(slot->get());
      }));

  TAURUS_RETURN_IF_ERROR(ForEachExprSlot(block, NormalizeNot));
  if (opts.fold_constants) {
    TAURUS_RETURN_IF_ERROR(ForEachExprSlot(block, FoldExpr));
  }
  if (opts.subquery_to_semijoin) {
    TAURUS_RETURN_IF_ERROR(ConvertSubqueries(block));
  }
  if (opts.simplify_outer_joins) {
    TAURUS_RETURN_IF_ERROR(SimplifyBlockOuterJoins(block, num_refs));
  }
  if (block->union_next) {
    TAURUS_RETURN_IF_ERROR(PrepareBlock(block->union_next.get(), opts,
                                        num_refs));
  }
  return Status::OK();
}

}  // namespace

Status PrepareStatement(BoundStatement* stmt, const PrepareOptions& opts) {
  TAURUS_RETURN_IF_ERROR(PrepareBlock(stmt->block.get(), opts,
                                      stmt->num_refs));
  // Re-collect leaves: subquery-to-semijoin moved leaves between blocks and
  // conjunct cloning re-created subquery leaf objects.
  RecollectLeaves(stmt);
  return Status::OK();
}

void RecollectLeaves(BoundStatement* stmt) {
  stmt->leaves.assign(static_cast<size_t>(stmt->num_refs), nullptr);
  std::vector<QueryBlock*> blocks{stmt->block.get()};
  while (!blocks.empty()) {
    QueryBlock* b = blocks.back();
    blocks.pop_back();
    for (TableRef* leaf : b->Leaves()) {
      if (leaf->ref_id >= 0) {
        stmt->leaves[static_cast<size_t>(leaf->ref_id)] = leaf;
      }
      leaf->owner = b;  // re-establish TABLE_LIST links on cloned leaves
      if (leaf->kind == TableRef::Kind::kDerived) {
        blocks.push_back(leaf->derived.get());
      }
    }
    if (b->union_next) blocks.push_back(b->union_next.get());
    // Subquery blocks cloned during conjunct surgery also need re-owning.
    std::function<void(const Expr&)> visit_expr = [&](const Expr& e) {
      if (e.subquery) blocks.push_back(e.subquery.get());
      for (const auto& c : e.children) visit_expr(*c);
    };
    for (const auto& item : b->select_items) visit_expr(*item.expr);
    if (b->where) visit_expr(*b->where);
    if (b->having) visit_expr(*b->having);
    for (const auto& g : b->group_by) visit_expr(*g);
    for (const auto& o : b->order_by) visit_expr(*o.expr);
    {
      std::vector<const TableRef*> st;
      for (const auto& t : b->from) st.push_back(t.get());
      while (!st.empty()) {
        const TableRef* r = st.back();
        st.pop_back();
        if (r->kind == TableRef::Kind::kJoin) {
          if (r->on) visit_expr(*r->on);
          st.push_back(r->left.get());
          st.push_back(r->right.get());
        }
      }
    }
  }
}

}  // namespace taurus
