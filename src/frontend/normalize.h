#ifndef TAURUS_FRONTEND_NORMALIZE_H_
#define TAURUS_FRONTEND_NORMALIZE_H_

#include <memory>

#include "parser/ast.h"

namespace taurus {

/// Orca's OR-refactoring (paper Section 7 MySQL-change item 4 and the
/// TPC-DS Q41 analysis in Section 6.2): rewrites
///     (a AND x) OR (a AND y)   ->   a AND (x OR y)
/// pulling conjuncts common to every OR branch (matched structurally) out
/// in front. This can expose hash-joinable equalities and halves repeated
/// predicate evaluation. Applied recursively; returns true if anything
/// changed.
bool FactorOrCommonConjuncts(std::unique_ptr<Expr>* expr);

}  // namespace taurus

#endif  // TAURUS_FRONTEND_NORMALIZE_H_
