#include "frontend/normalize.h"

#include <vector>

#include "parser/ast_util.h"

namespace taurus {

namespace {

/// Collects the top-level OR branches of an expression.
void SplitDisjuncts(Expr* e, std::vector<Expr*>* out) {
  if (e->kind == Expr::Kind::kBinary && e->bop == BinaryOp::kOr) {
    SplitDisjuncts(e->children[0].get(), out);
    SplitDisjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

std::unique_ptr<Expr> AndAll(std::vector<std::unique_ptr<Expr>> conjs) {
  std::unique_ptr<Expr> acc;
  for (auto& c : conjs) {
    if (!acc) {
      acc = std::move(c);
    } else {
      acc = MakeBinary(BinaryOp::kAnd, std::move(acc), std::move(c));
      acc->result_type = TypeId::kTiny;
    }
  }
  return acc;
}

std::unique_ptr<Expr> OrAll(std::vector<std::unique_ptr<Expr>> disjs) {
  std::unique_ptr<Expr> acc;
  for (auto& d : disjs) {
    if (!acc) {
      acc = std::move(d);
    } else {
      acc = MakeBinary(BinaryOp::kOr, std::move(acc), std::move(d));
      acc->result_type = TypeId::kTiny;
    }
  }
  return acc;
}

}  // namespace

bool FactorOrCommonConjuncts(std::unique_ptr<Expr>* expr) {
  Expr* e = expr->get();
  bool changed = false;
  for (auto& child : e->children) {
    changed |= FactorOrCommonConjuncts(&child);
  }
  if (e->kind != Expr::Kind::kBinary || e->bop != BinaryOp::kOr) {
    return changed;
  }

  std::vector<Expr*> branches;
  SplitDisjuncts(e, &branches);
  if (branches.size() < 2) return changed;

  // Conjuncts of the first branch that appear (structurally) in every
  // other branch are common.
  std::vector<const Expr*> first;
  SplitConjuncts(branches[0], &first);
  std::vector<const Expr*> common;
  for (const Expr* cand : first) {
    bool in_all = true;
    for (size_t b = 1; b < branches.size() && in_all; ++b) {
      std::vector<const Expr*> conjs;
      SplitConjuncts(branches[b], &conjs);
      bool found = false;
      for (const Expr* c : conjs) {
        if (ExprEquals(*c, *cand)) {
          found = true;
          break;
        }
      }
      in_all = found;
    }
    if (in_all) common.push_back(cand);
  }
  if (common.empty()) return changed;

  // Rebuild: common AND (residual1 OR residual2 OR ...).
  std::vector<std::unique_ptr<Expr>> new_disjuncts;
  bool any_branch_empty = false;
  for (Expr* branch : branches) {
    std::vector<const Expr*> conjs;
    SplitConjuncts(branch, &conjs);
    std::vector<std::unique_ptr<Expr>> residual;
    for (const Expr* c : conjs) {
      bool is_common = false;
      for (const Expr* k : common) {
        if (ExprEquals(*c, *k)) {
          is_common = true;
          break;
        }
      }
      if (!is_common) residual.push_back(c->Clone());
    }
    if (residual.empty()) {
      // A branch consisting only of common conjuncts makes the OR of
      // residuals vacuously true.
      any_branch_empty = true;
      break;
    }
    new_disjuncts.push_back(AndAll(std::move(residual)));
  }

  std::vector<std::unique_ptr<Expr>> pieces;
  for (const Expr* k : common) pieces.push_back(k->Clone());
  if (!any_branch_empty) {
    pieces.push_back(OrAll(std::move(new_disjuncts)));
  }
  std::unique_ptr<Expr> replacement = AndAll(std::move(pieces));
  replacement->result_type = TypeId::kTiny;
  *expr = std::move(replacement);
  return true;
}

}  // namespace taurus
