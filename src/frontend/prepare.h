#ifndef TAURUS_FRONTEND_PREPARE_H_
#define TAURUS_FRONTEND_PREPARE_H_

#include "common/status.h"
#include "frontend/binder.h"

namespace taurus {

/// Options controlling the MySQL "Prepare" phase rewrites (Section 2.2).
struct PrepareOptions {
  /// Fold constant scalar subtrees (e.g. DATE '1995-01-01' + INTERVAL 3
  /// MONTH) to literals.
  bool fold_constants = true;
  /// Convert top-level EXISTS / IN (subquery) WHERE conjuncts into
  /// semi/anti-semi joins when allowed (NOT IN requires non-nullable
  /// columns, mirroring MySQL's nullability condition, Section 4.1).
  bool subquery_to_semijoin = true;
  /// Convert LEFT JOINs to INNER when a WHERE conjunct is null-rejecting
  /// on the inner side.
  bool simplify_outer_joins = true;
};

/// Runs the Prepare-phase logical rewrites over a bound statement, in
/// place. The rewrites preserve binding (ref_ids remain stable; moved
/// leaves are re-owned by their new blocks).
Status PrepareStatement(BoundStatement* stmt,
                        const PrepareOptions& opts = PrepareOptions());

/// Rebuilds stmt->leaves (indexed by ref_id) and re-establishes leaf owner
/// pointers after an AST-restructuring rewrite (conjunct cloning, subquery
/// conversion, decorrelation). stmt->num_refs must already reflect any
/// newly introduced leaves.
void RecollectLeaves(BoundStatement* stmt);

}  // namespace taurus

#endif  // TAURUS_FRONTEND_PREPARE_H_
