#ifndef TAURUS_FRONTEND_BINDER_H_
#define TAURUS_FRONTEND_BINDER_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "parser/ast.h"

namespace taurus {

/// Result of binding a statement: the bound AST plus statement-wide
/// metadata needed by planning and execution.
struct BoundStatement {
  std::unique_ptr<QueryBlock> block;
  /// Total number of table-reference leaves across all blocks; frames are
  /// indexed by ref_id in [0, num_refs).
  int num_refs = 0;
  /// Total number of query blocks (block_id in [0, num_blocks)).
  int num_blocks = 0;
  /// Leaf lookup by ref_id (non-owning; leaves live in `block`).
  std::vector<TableRef*> leaves;
};

/// Resolves names (tables against the catalog, CTEs, column references incl.
/// correlated ones), expands '*', resolves ORDER BY / GROUP BY ordinals and
/// aliases, assigns ref_id / block_id, sets TABLE_LIST-style owner pointers,
/// and derives expression result types.
///
/// CTE references are expanded to derived tables by cloning the CTE body —
/// MySQL's "multiple producer plans" model (Section 4.2.3); the Orca plan
/// converter later maps Orca's single producer back onto these copies.
Result<BoundStatement> BindStatement(const Catalog& catalog,
                                     std::unique_ptr<QueryBlock> block);

/// Returns the output column names of a bound query block (select aliases,
/// column names for bare column refs, or synthesized `name_exp_<i>`).
std::vector<std::string> OutputColumnNames(const QueryBlock& block);

/// Returns the expression a derived table exposes for output column `idx`.
const Expr* DerivedOutputExpr(const TableRef& derived_leaf, int idx);

}  // namespace taurus

#endif  // TAURUS_FRONTEND_BINDER_H_
