#include "frontend/binder.h"

#include <utility>

#include "common/strings.h"

namespace taurus {

namespace {

/// Synthesized output name for an unnamed select item, matching the naming
/// MySQL uses for derived-table columns ("Name_exp_<i>" in the paper's
/// Listing 7; lower-cased here).
std::string SynthesizedName(int idx) {
  return "name_exp_" + std::to_string(idx + 1);
}

std::string OutputNameOf(const SelectItem& item, int idx) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == Expr::Kind::kColumnRef) return item.expr->column_name;
  return SynthesizedName(idx);
}

TypeId DeriveArithmeticType(TypeId l, TypeId r, BinaryOp op) {
  if (op == BinaryOp::kDiv) return TypeId::kDouble;
  if (IsNumericType(l) || IsNumericType(r)) return TypeId::kDouble;
  // date - date and friends degrade to integer arithmetic.
  return TypeId::kLongLong;
}

class Binder {
 public:
  explicit Binder(const Catalog& catalog) : catalog_(catalog) {}

  struct Scope {
    QueryBlock* block = nullptr;
    std::vector<TableRef*> leaves;
    Scope* parent = nullptr;
  };

  Status BindBlock(QueryBlock* block, Scope* parent_scope);

  int num_refs() const { return next_ref_id_; }
  int num_blocks() const { return next_block_id_; }
  std::vector<TableRef*>& leaves() { return leaves_; }

 private:
  Status BindTableRef(TableRef* ref, Scope* scope, QueryBlock* block);
  Status BindExpr(Expr* expr, Scope* scope);
  Status ResolveColumn(Expr* expr, Scope* scope);
  Status DeriveType(Expr* expr);

  /// Finds a CTE definition visible from `block` walking the enclosing
  /// blocks. Returns nullptr when `name` is not a CTE.
  const CteDef* FindCte(const std::string& name, Scope* scope,
                        QueryBlock* current_block);

  // Defense-in-depth against stack overflow: the parser already bounds
  // nesting, but CTE expansion clones blocks after parsing, so the binder
  // re-checks with its own (looser) limits.
  static constexpr int kMaxBlockDepth = 40;
  static constexpr int kMaxExprDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(int* d) : depth(d) { ++*depth; }
    ~DepthGuard() { --*depth; }
    int* depth;
  };

  const Catalog& catalog_;
  int next_ref_id_ = 0;
  int next_block_id_ = 0;
  std::vector<TableRef*> leaves_;
  int block_depth_ = 0;
  int expr_depth_ = 0;
};

const CteDef* Binder::FindCte(const std::string& name, Scope* scope,
                              QueryBlock* current_block) {
  if (current_block != nullptr) {
    for (const CteDef& cte : current_block->ctes) {
      if (cte.name == name) return &cte;
    }
  }
  for (Scope* s = scope; s != nullptr; s = s->parent) {
    if (s->block == nullptr) continue;
    for (const CteDef& cte : s->block->ctes) {
      if (cte.name == name) return &cte;
    }
  }
  return nullptr;
}

Status Binder::BindTableRef(TableRef* ref, Scope* scope, QueryBlock* block) {
  switch (ref->kind) {
    case TableRef::Kind::kJoin:
      TAURUS_RETURN_IF_ERROR(BindTableRef(ref->left.get(), scope, block));
      TAURUS_RETURN_IF_ERROR(BindTableRef(ref->right.get(), scope, block));
      // ON conditions are bound after all leaves are registered.
      return Status::OK();
    case TableRef::Kind::kBase: {
      // CTE reference? Expand to a derived table (one copy per consumer —
      // MySQL's multiple-producer model).
      const CteDef* cte = FindCte(ref->table_name, scope, block);
      if (cte != nullptr) {
        ref->kind = TableRef::Kind::kDerived;
        ref->from_cte = true;
        ref->cte_name = ref->table_name;
        ref->derived = cte->query->Clone();
        if (ref->alias.empty() || ref->alias == ref->table_name) {
          ref->alias = ref->table_name;
        }
        return BindTableRef(ref, scope, block);
      }
      const TableDef* table = catalog_.GetTable(ref->table_name);
      if (table == nullptr) {
        return Status::BindError("no such table: " + ref->table_name);
      }
      ref->table = table;
      ref->ref_id = next_ref_id_++;
      ref->owner = block;
      leaves_.push_back(ref);
      scope->leaves.push_back(ref);
      return Status::OK();
    }
    case TableRef::Kind::kDerived: {
      // A derived table cannot see sibling FROM entries, but it must see
      // the enclosing blocks' CTEs (e.g. a UNION of CTE references inside
      // a derived table) and outer scopes for correlation. Hide the
      // current block's leaves while keeping its CTE definitions visible.
      Scope cte_scope;
      cte_scope.block = block;
      cte_scope.parent = scope->parent;
      TAURUS_RETURN_IF_ERROR(BindBlock(ref->derived.get(), &cte_scope));
      ref->ref_id = next_ref_id_++;
      ref->owner = block;
      leaves_.push_back(ref);
      scope->leaves.push_back(ref);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable table-ref kind");
}

Status Binder::ResolveColumn(Expr* expr, Scope* scope) {
  const std::string& qualifier = expr->table_name;
  const std::string& column = expr->column_name;
  for (Scope* s = scope; s != nullptr; s = s->parent) {
    const TableRef* match = nullptr;
    int match_idx = -1;
    TypeId match_type = TypeId::kNull;
    bool match_nullable = true;
    for (const TableRef* leaf : s->leaves) {
      if (!qualifier.empty() && leaf->alias != qualifier) continue;
      int idx = -1;
      TypeId type = TypeId::kNull;
      bool nullable = true;
      if (leaf->kind == TableRef::Kind::kBase) {
        idx = leaf->table->ColumnIndex(column);
        if (idx >= 0) {
          type = leaf->table->columns[static_cast<size_t>(idx)].type;
          nullable = leaf->table->columns[static_cast<size_t>(idx)].nullable;
        }
      } else {
        const QueryBlock& inner = *leaf->derived;
        for (size_t i = 0; i < inner.select_items.size(); ++i) {
          if (OutputNameOf(inner.select_items[i], static_cast<int>(i)) ==
              column) {
            idx = static_cast<int>(i);
            type = inner.select_items[i].expr->result_type;
            break;
          }
        }
      }
      if (idx < 0) continue;
      if (match != nullptr && match != leaf) {
        return Status::BindError("ambiguous column reference: " + column);
      }
      match = leaf;
      match_idx = idx;
      match_type = type;
      match_nullable = nullable;
    }
    if (match != nullptr) {
      expr->ref_id = match->ref_id;
      expr->column_idx = match_idx;
      expr->result_type = match_type;
      expr->column_nullable = match_nullable;
      return Status::OK();
    }
  }
  return Status::BindError("unresolved column: " +
                           (qualifier.empty() ? column
                                              : qualifier + "." + column));
}

Status Binder::DeriveType(Expr* expr) {
  switch (expr->kind) {
    case Expr::Kind::kLiteral:
      expr->result_type = expr->literal.type();
      return Status::OK();
    case Expr::Kind::kColumnRef:
      return Status::OK();  // set during resolution
    case Expr::Kind::kBinary:
      if (IsArithmeticOp(expr->bop)) {
        expr->result_type =
            DeriveArithmeticType(expr->children[0]->result_type,
                                 expr->children[1]->result_type, expr->bop);
      } else {
        expr->result_type = TypeId::kTiny;  // comparisons & AND/OR
      }
      return Status::OK();
    case Expr::Kind::kUnary:
      expr->result_type = (expr->uop == UnaryOp::kNeg)
                              ? expr->children[0]->result_type
                              : TypeId::kTiny;
      return Status::OK();
    case Expr::Kind::kAgg:
      switch (expr->agg_func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          expr->result_type = TypeId::kLongLong;
          break;
        case AggFunc::kAvg:
        case AggFunc::kStddev:
          expr->result_type = TypeId::kDouble;
          break;
        case AggFunc::kSum:
          expr->result_type =
              IsIntegerType(expr->children[0]->result_type)
                  ? TypeId::kLongLong
                  : TypeId::kDouble;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          expr->result_type = expr->children[0]->result_type;
          break;
      }
      return Status::OK();
    case Expr::Kind::kFuncCall: {
      const std::string& f = expr->func_name;
      if (f == "year" || f == "month" || f == "day" || f == "length") {
        expr->result_type = TypeId::kLong;
      } else if (f == "substring" || f == "substr" || f == "upper" ||
                 f == "lower" || f == "concat" || f == "trim") {
        expr->result_type = TypeId::kVarchar;
      } else if (f == "abs" || f == "round" || f == "mod") {
        expr->result_type = expr->children.empty()
                                ? TypeId::kDouble
                                : expr->children[0]->result_type;
      } else if (f == "coalesce" || f == "ifnull" || f == "nullif") {
        expr->result_type = expr->children[0]->result_type;
      } else if (f == "if") {
        expr->result_type = expr->children.size() > 1
                                ? expr->children[1]->result_type
                                : TypeId::kNull;
      } else {
        return Status::NotSupported("unknown function: " + f);
      }
      return Status::OK();
    }
    case Expr::Kind::kCase: {
      size_t n = expr->children.size() - (expr->case_has_else ? 1 : 0);
      expr->result_type = n >= 2 ? expr->children[1]->result_type
                                 : TypeId::kNull;
      return Status::OK();
    }
    case Expr::Kind::kInList:
    case Expr::Kind::kBetween:
    case Expr::Kind::kLike:
    case Expr::Kind::kExists:
    case Expr::Kind::kInSubquery:
      expr->result_type = TypeId::kTiny;
      return Status::OK();
    case Expr::Kind::kScalarSubquery:
      expr->result_type = expr->subquery->select_items.empty()
                              ? TypeId::kNull
                              : expr->subquery->select_items[0]
                                    .expr->result_type;
      return Status::OK();
    case Expr::Kind::kCast:
      expr->result_type = expr->cast_type;
      return Status::OK();
    case Expr::Kind::kIntervalAdd:
      expr->result_type = expr->children[0]->result_type == TypeId::kNull
                              ? TypeId::kDate
                              : expr->children[0]->result_type;
      return Status::OK();
  }
  return Status::Internal("unreachable expr kind");
}

Status Binder::BindExpr(Expr* expr, Scope* scope) {
  DepthGuard depth(&expr_depth_);
  if (expr_depth_ > kMaxExprDepth) {
    return Status::SyntaxError("expression nested too deeply (limit " +
                               std::to_string(kMaxExprDepth) + ")");
  }
  if (expr->kind == Expr::Kind::kColumnRef) {
    return ResolveColumn(expr, scope);
  }
  for (auto& child : expr->children) {
    TAURUS_RETURN_IF_ERROR(BindExpr(child.get(), scope));
  }
  if (expr->subquery) {
    TAURUS_RETURN_IF_ERROR(BindBlock(expr->subquery.get(), scope));
    if (expr->kind == Expr::Kind::kScalarSubquery ||
        expr->kind == Expr::Kind::kInSubquery) {
      if (expr->subquery->select_items.size() != 1) {
        return Status::BindError("subquery must return exactly one column");
      }
    }
  }
  return DeriveType(expr);
}

Status Binder::BindBlock(QueryBlock* block, Scope* parent_scope) {
  DepthGuard depth(&block_depth_);
  if (block_depth_ > kMaxBlockDepth) {
    return Status::SyntaxError("query blocks nested too deeply (limit " +
                               std::to_string(kMaxBlockDepth) + ")");
  }
  block->block_id = next_block_id_++;
  Scope scope;
  scope.block = block;
  scope.parent = parent_scope;

  // Bind FROM (registers leaves, expands CTE references).
  for (auto& ref : block->from) {
    TAURUS_RETURN_IF_ERROR(BindTableRef(ref.get(), &scope, block));
  }
  // Bind join ON conditions now that all leaves are visible.
  {
    std::vector<TableRef*> stack;
    for (auto& ref : block->from) stack.push_back(ref.get());
    while (!stack.empty()) {
      TableRef* r = stack.back();
      stack.pop_back();
      if (r->kind == TableRef::Kind::kJoin) {
        if (r->on) TAURUS_RETURN_IF_ERROR(BindExpr(r->on.get(), &scope));
        stack.push_back(r->left.get());
        stack.push_back(r->right.get());
      }
    }
  }

  // Expand '*' select items.
  {
    std::vector<SelectItem> expanded;
    for (auto& item : block->select_items) {
      if (item.expr->kind == Expr::Kind::kColumnRef &&
          item.expr->column_name == "*") {
        const std::string& qualifier = item.expr->table_name;
        bool any = false;
        for (TableRef* leaf : scope.leaves) {
          if (!qualifier.empty() && leaf->alias != qualifier) continue;
          any = true;
          if (leaf->kind == TableRef::Kind::kBase) {
            for (const ColumnDef& col : leaf->table->columns) {
              expanded.push_back(
                  SelectItem{MakeColumnRef(leaf->alias, col.name), ""});
            }
          } else {
            const QueryBlock& inner = *leaf->derived;
            for (size_t i = 0; i < inner.select_items.size(); ++i) {
              expanded.push_back(SelectItem{
                  MakeColumnRef(leaf->alias,
                                OutputNameOf(inner.select_items[i],
                                             static_cast<int>(i))),
                  ""});
            }
          }
        }
        if (!any) {
          return Status::BindError("'*' qualifier matches no table: " +
                                   qualifier);
        }
      } else {
        expanded.push_back(std::move(item));
      }
    }
    block->select_items = std::move(expanded);
  }

  for (auto& item : block->select_items) {
    TAURUS_RETURN_IF_ERROR(BindExpr(item.expr.get(), &scope));
  }
  if (block->where) {
    TAURUS_RETURN_IF_ERROR(BindExpr(block->where.get(), &scope));
  }

  // GROUP BY: resolve ordinals and select-list aliases first.
  for (auto& g : block->group_by) {
    if (g->kind == Expr::Kind::kLiteral &&
        g->literal.kind() == Value::Kind::kInt) {
      int64_t ord = g->literal.AsInt();
      if (ord < 1 ||
          ord > static_cast<int64_t>(block->select_items.size())) {
        return Status::BindError("GROUP BY ordinal out of range");
      }
      g = block->select_items[static_cast<size_t>(ord - 1)].expr->Clone();
      continue;
    }
    if (g->kind == Expr::Kind::kColumnRef && g->table_name.empty()) {
      bool replaced = false;
      for (auto& item : block->select_items) {
        if (item.alias == g->column_name &&
            item.expr->kind != Expr::Kind::kColumnRef) {
          g = item.expr->Clone();
          replaced = true;
          break;
        }
      }
      if (replaced) continue;
    }
    TAURUS_RETURN_IF_ERROR(BindExpr(g.get(), &scope));
  }

  // HAVING may reference select aliases.
  if (block->having) {
    // Replace alias references by clones of the aliased expressions.
    std::vector<Expr*> stack{block->having.get()};
    while (!stack.empty()) {
      Expr* e = stack.back();
      stack.pop_back();
      for (auto& child : e->children) {
        if (child->kind == Expr::Kind::kColumnRef &&
            child->table_name.empty()) {
          for (auto& item : block->select_items) {
            if (item.alias == child->column_name) {
              child = item.expr->Clone();
              break;
            }
          }
        }
        stack.push_back(child.get());
      }
    }
    if (block->having->kind == Expr::Kind::kColumnRef &&
        block->having->table_name.empty()) {
      for (auto& item : block->select_items) {
        if (item.alias == block->having->column_name) {
          block->having = item.expr->Clone();
          break;
        }
      }
    }
    TAURUS_RETURN_IF_ERROR(BindExpr(block->having.get(), &scope));
  }

  // ORDER BY: ordinals and aliases resolve against the select list.
  for (auto& o : block->order_by) {
    if (o.expr->kind == Expr::Kind::kLiteral &&
        o.expr->literal.kind() == Value::Kind::kInt) {
      int64_t ord = o.expr->literal.AsInt();
      if (ord < 1 ||
          ord > static_cast<int64_t>(block->select_items.size())) {
        return Status::BindError("ORDER BY ordinal out of range");
      }
      o.expr = block->select_items[static_cast<size_t>(ord - 1)].expr->Clone();
      continue;
    }
    if (o.expr->kind == Expr::Kind::kColumnRef && o.expr->table_name.empty()) {
      bool replaced = false;
      for (auto& item : block->select_items) {
        if (item.alias == o.expr->column_name) {
          o.expr = item.expr->Clone();
          replaced = true;
          break;
        }
      }
      if (replaced) continue;
    }
    TAURUS_RETURN_IF_ERROR(BindExpr(o.expr.get(), &scope));
  }

  // UNION continuation binds in the same enclosing scope.
  if (block->union_next) {
    TAURUS_RETURN_IF_ERROR(BindBlock(block->union_next.get(), parent_scope));
    if (block->union_next->select_items.size() !=
        block->select_items.size()) {
      return Status::BindError("UNION arms have different column counts");
    }
  }
  return Status::OK();
}

}  // namespace

Result<BoundStatement> BindStatement(const Catalog& catalog,
                                     std::unique_ptr<QueryBlock> block) {
  Binder binder(catalog);
  TAURUS_RETURN_IF_ERROR(binder.BindBlock(block.get(), nullptr));
  BoundStatement out;
  out.block = std::move(block);
  out.num_refs = binder.num_refs();
  out.num_blocks = binder.num_blocks();
  out.leaves = std::move(binder.leaves());
  return out;
}

std::vector<std::string> OutputColumnNames(const QueryBlock& block) {
  std::vector<std::string> names;
  names.reserve(block.select_items.size());
  for (size_t i = 0; i < block.select_items.size(); ++i) {
    names.push_back(OutputNameOf(block.select_items[i], static_cast<int>(i)));
  }
  return names;
}

const Expr* DerivedOutputExpr(const TableRef& derived_leaf, int idx) {
  if (derived_leaf.kind != TableRef::Kind::kDerived) return nullptr;
  const QueryBlock& inner = *derived_leaf.derived;
  if (idx < 0 || static_cast<size_t>(idx) >= inner.select_items.size()) {
    return nullptr;
  }
  return inner.select_items[static_cast<size_t>(idx)].expr.get();
}

}  // namespace taurus
