#include "frontend/fingerprint.h"

#include <cctype>

namespace taurus {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

void SerializeBlock(const QueryBlock& block, std::string* out);

void SerializeExpr(const Expr& e, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      out->push_back('L');
      out->append(std::to_string(static_cast<int>(e.literal.kind())));
      out->push_back(':');
      out->append(e.literal.ToString());
      return;
    case Expr::Kind::kColumnRef:
      if (e.ref_id >= 0) {
        out->push_back('c');
        out->append(std::to_string(e.ref_id));
        out->push_back('.');
        out->append(std::to_string(e.column_idx));
      } else {
        // Unresolved reference (should not survive binding); fall back to
        // case-normalized names so the serialization stays deterministic.
        out->append(Lower(e.table_name));
        out->push_back('.');
        out->append(Lower(e.column_name));
      }
      return;
    case Expr::Kind::kBinary:
      out->push_back('(');
      SerializeExpr(*e.children[0], out);
      out->push_back(' ');
      out->append(BinaryOpName(e.bop));
      out->push_back(' ');
      SerializeExpr(*e.children[1], out);
      out->push_back(')');
      return;
    case Expr::Kind::kUnary:
      out->push_back('u');
      out->append(std::to_string(static_cast<int>(e.uop)));
      out->push_back('(');
      SerializeExpr(*e.children[0], out);
      out->push_back(')');
      return;
    case Expr::Kind::kFuncCall:
      out->append(Lower(e.func_name));
      break;
    case Expr::Kind::kAgg:
      out->append(AggFuncName(e.agg_func));
      if (e.agg_distinct) out->push_back('!');
      break;
    case Expr::Kind::kCase:
      out->append("case");
      if (e.case_has_else) out->push_back('e');
      break;
    case Expr::Kind::kInList:
      out->append(e.negated ? "notin" : "in");
      break;
    case Expr::Kind::kBetween:
      out->append(e.negated ? "notbetween" : "between");
      break;
    case Expr::Kind::kLike:
      out->append(e.negated ? "notlike" : "like");
      break;
    case Expr::Kind::kExists:
      out->append(e.negated ? "notexists" : "exists");
      break;
    case Expr::Kind::kInSubquery:
      out->append(e.negated ? "notinsub" : "insub");
      break;
    case Expr::Kind::kScalarSubquery:
      out->append("scalar");
      break;
    case Expr::Kind::kCast:
      out->append("cast");
      out->append(std::to_string(static_cast<int>(e.cast_type)));
      break;
    case Expr::Kind::kIntervalAdd:
      out->append("ivl");
      out->append(std::to_string(static_cast<int>(e.interval_unit)));
      out->push_back(':');
      out->append(std::to_string(e.interval_amount));
      break;
  }
  out->push_back('(');
  for (size_t i = 0; i < e.children.size(); ++i) {
    if (i) out->push_back(',');
    SerializeExpr(*e.children[i], out);
  }
  out->push_back(')');
  if (e.subquery != nullptr) {
    out->push_back('[');
    SerializeBlock(*e.subquery, out);
    out->push_back(']');
  }
}

void SerializeTableRef(const TableRef& ref, std::string* out) {
  switch (ref.kind) {
    case TableRef::Kind::kBase:
      out->push_back('t');
      out->append(std::to_string(ref.table != nullptr ? ref.table->id : -1));
      out->append("#r");
      out->append(std::to_string(ref.ref_id));
      return;
    case TableRef::Kind::kDerived:
      out->append("d#r");
      out->append(std::to_string(ref.ref_id));
      out->push_back('[');
      SerializeBlock(*ref.derived, out);
      out->push_back(']');
      return;
    case TableRef::Kind::kJoin:
      out->push_back('(');
      SerializeTableRef(*ref.left, out);
      out->push_back(' ');
      out->append(JoinTypeName(ref.join_type));
      out->push_back(' ');
      SerializeTableRef(*ref.right, out);
      if (ref.on != nullptr) {
        out->append(" on ");
        SerializeExpr(*ref.on, out);
      }
      out->push_back(')');
      return;
  }
}

void SerializeBlock(const QueryBlock& block, std::string* out) {
  out->push_back('{');
  if (block.distinct) out->append("distinct ");
  out->append("sel:");
  for (size_t i = 0; i < block.select_items.size(); ++i) {
    if (i) out->push_back(',');
    SerializeExpr(*block.select_items[i].expr, out);
  }
  out->append(";from:");
  for (size_t i = 0; i < block.from.size(); ++i) {
    if (i) out->push_back(',');
    SerializeTableRef(*block.from[i], out);
  }
  if (block.where != nullptr) {
    out->append(";where:");
    SerializeExpr(*block.where, out);
  }
  if (!block.group_by.empty()) {
    out->append(";group:");
    for (size_t i = 0; i < block.group_by.size(); ++i) {
      if (i) out->push_back(',');
      SerializeExpr(*block.group_by[i], out);
    }
  }
  if (block.having != nullptr) {
    out->append(";having:");
    SerializeExpr(*block.having, out);
  }
  if (!block.order_by.empty()) {
    out->append(";order:");
    for (size_t i = 0; i < block.order_by.size(); ++i) {
      if (i) out->push_back(',');
      SerializeExpr(*block.order_by[i].expr, out);
      out->push_back(block.order_by[i].ascending ? 'a' : 'd');
    }
  }
  if (block.limit >= 0) {
    out->append(";limit:");
    out->append(std::to_string(block.limit));
    out->push_back(',');
    out->append(std::to_string(block.offset));
  }
  if (block.union_next != nullptr) {
    out->append(block.union_all ? ";unionall:" : ";union:");
    SerializeBlock(*block.union_next, out);
  }
  out->push_back('}');
}

}  // namespace

uint64_t FingerprintHash(const std::string& bytes) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV-1a prime
  }
  return h;
}

StatementFingerprint FingerprintStatement(const BoundStatement& stmt) {
  StatementFingerprint fp;
  fp.canonical.reserve(256);
  fp.canonical.append("refs:");
  fp.canonical.append(std::to_string(stmt.num_refs));
  fp.canonical.push_back(';');
  SerializeBlock(*stmt.block, &fp.canonical);
  fp.hash = FingerprintHash(fp.canonical);
  return fp;
}

}  // namespace taurus
