#include "obs/estimate_feedback.h"

#include <algorithm>

namespace taurus {

double QError(double est_rows, double actual_rows) {
  double est = std::max(est_rows, 1.0);
  double act = std::max(actual_rows, 1.0);
  return std::max(est / act, act / est);
}

std::vector<PositionQError> CollectPositionQErrors(
    const BlockPlan& plan, const OpActualsMap& actuals) {
  std::vector<PositionQError> out;
  if (plan.join_root == nullptr) return out;
  std::vector<const PhysOp*> leaves;
  plan.join_root->CollectLeaves(&leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    const PhysOp* leaf = leaves[i];
    const OpActual* a = actuals.Find(leaf);
    if (a == nullptr || a->loops <= 0) continue;
    PositionQError pq;
    pq.position = static_cast<int>(i);
    if (leaf->leaf != nullptr) pq.alias = leaf->leaf->alias;
    pq.est_rows = leaf->est_rows;
    pq.actual_rows = static_cast<double>(a->rows) /
                     static_cast<double>(std::max<int64_t>(a->loops, 1));
    pq.q_error = QError(pq.est_rows, pq.actual_rows);
    out.push_back(std::move(pq));
  }
  return out;
}

}  // namespace taurus
