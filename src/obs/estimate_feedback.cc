#include "obs/estimate_feedback.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

namespace taurus {

double QError(double est_rows, double actual_rows) {
  double est = std::max(est_rows, 1.0);
  double act = std::max(actual_rows, 1.0);
  return std::max(est / act, act / est);
}

namespace {

/// Mirrors the executor's driving-chain descent (block_executor
/// DrivingChild): filters and NL joins descend into the left/outer child,
/// hash joins into the probe side (build is LEFT for inner/cross — the
/// MySQL quirk of Section 7 item 2 — RIGHT otherwise).
const PhysOp* DrivingChildOf(const PhysOp& op) {
  switch (op.kind) {
    case PhysOp::Kind::kFilter:
    case PhysOp::Kind::kNLJoin:
      return op.child.get();
    case PhysOp::Kind::kHashJoin: {
      bool build_is_left = (op.join_type == JoinType::kInner ||
                            op.join_type == JoinType::kCross);
      return build_is_left ? op.right.get() : op.child.get();
    }
    default:
      return nullptr;
  }
}

/// Ref-set key of the leaves under `op`; false when any leaf cannot be
/// identified by ref_id (the sample would be unkeyable).
bool RefSetKeyOf(const PhysOp& op, std::string* key) {
  std::vector<const PhysOp*> leaves;
  op.CollectLeaves(&leaves);
  std::vector<int> refs;
  for (const PhysOp* leaf : leaves) {
    if (leaf->leaf == nullptr || leaf->leaf->ref_id < 0) return false;
    refs.push_back(leaf->leaf->ref_id);
  }
  if (refs.empty()) return false;
  *key = RefSetKey(std::move(refs));
  return true;
}

void WalkPlanForHarvest(const BlockPlan& plan, const OpActualsMap& actuals,
                        FeedbackSample* sample);

void WalkOpForHarvest(const PhysOp& op, const OpActualsMap& actuals,
                      const std::unordered_set<const PhysOp*>& driving_chain,
                      FeedbackSample* sample) {
  const OpActual* a = actuals.Find(&op);
  bool trusted = a != nullptr && a->loops > 0 &&
                 (a->loops == 1 || driving_chain.count(&op) > 0) &&
                 op.kind != PhysOp::Kind::kIndexLookup;
  if (trusted) {
    std::string key;
    if (RefSetKeyOf(op, &key) &&
        sample->node_actuals.find(key) == sample->node_actuals.end()) {
      // Pre-order walk: the first (topmost) node with this ref-set wins.
      sample->node_actuals[key] = static_cast<double>(a->rows);
      sample->node_estimates[key] = op.est_rows;
    }
  }
  if (op.child != nullptr) {
    WalkOpForHarvest(*op.child, actuals, driving_chain, sample);
  }
  if (op.right != nullptr) {
    WalkOpForHarvest(*op.right, actuals, driving_chain, sample);
  }
  if (op.kind == PhysOp::Kind::kDerivedScan && op.derived_plan != nullptr) {
    WalkPlanForHarvest(*op.derived_plan, actuals, sample);
  }
}

void WalkPlanForHarvest(const BlockPlan& plan, const OpActualsMap& actuals,
                        FeedbackSample* sample) {
  if (plan.join_root != nullptr) {
    std::unordered_set<const PhysOp*> driving_chain;
    if (plan.parallel_eligible) {
      for (const PhysOp* op = plan.join_root.get(); op != nullptr;
           op = DrivingChildOf(*op)) {
        driving_chain.insert(op);
      }
    }
    WalkOpForHarvest(*plan.join_root, actuals, driving_chain, sample);
  }
  for (const auto& arm : plan.union_arms) {
    WalkPlanForHarvest(*arm, actuals, sample);
  }
}

}  // namespace

void HarvestFeedbackSample(const BlockPlan& plan, const OpActualsMap& actuals,
                           FeedbackSample* sample) {
  WalkPlanForHarvest(plan, actuals, sample);
}

std::vector<PositionQError> CollectPositionQErrors(
    const BlockPlan& plan, const OpActualsMap& actuals) {
  std::vector<PositionQError> out;
  if (plan.join_root == nullptr) return out;
  std::vector<const PhysOp*> leaves;
  plan.join_root->CollectLeaves(&leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    const PhysOp* leaf = leaves[i];
    const OpActual* a = actuals.Find(leaf);
    if (a == nullptr || a->loops <= 0) continue;
    PositionQError pq;
    pq.position = static_cast<int>(i);
    if (leaf->leaf != nullptr) pq.alias = leaf->leaf->alias;
    pq.est_rows = leaf->est_rows;
    pq.actual_rows = static_cast<double>(a->rows) /
                     static_cast<double>(std::max<int64_t>(a->loops, 1));
    pq.q_error = QError(pq.est_rows, pq.actual_rows);
    out.push_back(std::move(pq));
  }
  return out;
}

}  // namespace taurus
