#include "obs/metrics.h"

#include <cstdio>

namespace taurus {

namespace {

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  // Merge the three kinds into one sorted key space.
  std::map<std::string, std::string> entries;
  for (const auto& [name, c] : counters_) {
    entries[name] = std::to_string(c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    entries[name] = FormatDouble(g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    entries[name] = h->ToJson();
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : entries) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + name + "\": " + value;
  }
  out += "\n}\n";
  return out;
}

std::vector<std::pair<std::string, std::string>> MetricsRegistry::Snapshot()
    const {
  MutexLock lock(&mu_);
  std::map<std::string, std::string> entries;
  for (const auto& [name, c] : counters_) {
    entries[name] = std::to_string(c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    entries[name] = FormatDouble(g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    entries[name + ".count"] = std::to_string(h->Count());
    entries[name + ".p50"] = FormatDouble(h->PercentileMs(50));
    entries[name + ".p95"] = FormatDouble(h->PercentileMs(95));
    entries[name + ".p99"] = FormatDouble(h->PercentileMs(99));
    entries[name + ".max_ms"] = FormatDouble(h->MaxMs());
  }
  return {entries.begin(), entries.end()};
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace taurus
