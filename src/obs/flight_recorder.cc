#include "obs/flight_recorder.h"

#include <algorithm>
#include <utility>

namespace taurus {

uint64_t FlightRecorder::Record(FlightRecord record) {
  if (!config_.enable || config_.capacity == 0) return 0;
  records_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  if (ring_.size() != config_.capacity) ApplyCapacityLocked();
  record.seq = ++seq_;
  uint64_t seq = record.seq;
  if (!config_.pin_aborted_traces) record.pinned_trace.reset();
  ring_[next_] = std::move(record);  // drops the evicted slot's pin, if any
  next_ = (next_ + 1) % ring_.size();
  return seq;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  {
    MutexLock lock(&mu_);
    out.reserve(ring_.size());
    for (const FlightRecord& r : ring_) {
      if (r.seq != 0) out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

bool FlightRecorder::Find(uint64_t seq, FlightRecord* out) const {
  if (seq == 0) return false;
  MutexLock lock(&mu_);
  for (const FlightRecord& r : ring_) {
    if (r.seq == seq) {
      *out = r;
      return true;
    }
  }
  return false;
}

size_t FlightRecorder::Size() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const FlightRecord& r : ring_) {
    if (r.seq != 0) ++n;
  }
  return n;
}

void FlightRecorder::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
}

int64_t FlightRecorder::pinned() const {
  MutexLock lock(&mu_);
  int64_t n = 0;
  for (const FlightRecord& r : ring_) {
    if (r.seq != 0 && r.pinned_trace != nullptr) ++n;
  }
  return n;
}

void FlightRecorder::ApplyCapacityLocked() {
  std::vector<FlightRecord> kept;
  kept.reserve(ring_.size());
  for (FlightRecord& r : ring_) {
    if (r.seq != 0) kept.push_back(std::move(r));
  }
  std::sort(kept.begin(), kept.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  if (kept.size() > config_.capacity) {
    kept.erase(kept.begin(),
               kept.end() - static_cast<ptrdiff_t>(config_.capacity));
  }
  ring_.assign(config_.capacity, FlightRecord{});
  for (size_t i = 0; i < kept.size(); ++i) ring_[i] = std::move(kept[i]);
  next_ = kept.size() % config_.capacity;
}

}  // namespace taurus
