#include "obs/digest_store.h"

#include <algorithm>

namespace taurus {

void DigestStore::Record(const DigestSample& sample) {
  if (!config_.enable || config_.capacity == 0) return;
  records_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  std::unique_ptr<Entry>& slot = map_[sample.fingerprint];
  bool created = slot == nullptr;
  if (created) {
    slot = std::make_unique<Entry>();
    if (sample.canonical != nullptr) slot->statement = *sample.canonical;
  } else if (slot->statement.empty() && sample.canonical != nullptr) {
    // The digest was first seen through a path without a canonical text
    // (e.g. an error before fingerprinting); adopt it now.
    slot->statement = *sample.canonical;
  }
  Entry& e = *slot;
  e.last_used = ++tick_;  // stamped before eviction: never its own victim
  if (created) EvictOverCapacityLocked(config_.capacity);
  ++e.calls;
  if (sample.error) ++e.errors;
  if (sample.shed) ++e.shed;
  if (sample.fell_back) ++e.fallbacks;
  if (sample.quarantine_hit) ++e.quarantine_hits;
  if (sample.plan_cache_hit) ++e.plan_cache_hits;
  e.verifier_violations += sample.verifier_violations;
  e.rows_returned += sample.rows_returned;
  e.latency.Record(sample.latency_ms);
  (sample.used_orca ? e.orca_latency : e.mysql_latency)
      .Add(sample.latency_ms);
  if (sample.used_orca) {
    ++e.orca_calls;
  } else {
    ++e.mysql_calls;
  }
  e.epoch_latency.Add(sample.latency_ms);
}

bool DigestStore::BumpEpoch(uint64_t fingerprint, const char* cause) {
  if (!config_.enable) return false;
  MutexLock lock(&mu_);
  auto it = map_.find(fingerprint);
  if (it == map_.end()) return false;
  Entry& e = *it->second;
  // A bump with no executions since the last one is collapsed: the cached
  // skeleton changed again before anyone ran under it, so there is no
  // "before" sample set worth splitting on. This also dedups the several
  // hooks one DDL can fire (cache invalidation per path key, quarantine).
  if (e.epoch_latency.count == 0) {
    e.epoch_cause = cause;
    return false;
  }
  ++e.plan_epoch;
  e.epoch_cause = cause;
  e.prev_epoch_latency = e.epoch_latency;
  e.epoch_latency = LatencySummary{};
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<DigestSnapshot> DigestStore::Snapshot() const {
  std::vector<DigestSnapshot> out;
  {
    MutexLock lock(&mu_);
    out.reserve(map_.size());
    for (const auto& [fingerprint, entry] : map_) {
      const Entry& e = *entry;
      DigestSnapshot s;
      s.fingerprint = fingerprint;
      s.statement = e.statement;
      s.calls = e.calls;
      s.errors = e.errors;
      s.orca_calls = e.orca_calls;
      s.mysql_calls = e.mysql_calls;
      s.shed = e.shed;
      s.fallbacks = e.fallbacks;
      s.quarantine_hits = e.quarantine_hits;
      s.verifier_violations = e.verifier_violations;
      s.plan_cache_hits = e.plan_cache_hits;
      s.rows_returned = e.rows_returned;
      s.latency_count = e.latency.Count();
      s.latency_sum_ms = e.latency.SumMs();
      s.latency_p50 = e.latency.PercentileMs(50);
      s.latency_p95 = e.latency.PercentileMs(95);
      s.latency_p99 = e.latency.PercentileMs(99);
      s.latency_max_ms = e.latency.MaxMs();
      s.orca_latency = e.orca_latency;
      s.mysql_latency = e.mysql_latency;
      s.plan_epoch = e.plan_epoch;
      s.epoch_cause = e.epoch_cause;
      s.epoch_latency = e.epoch_latency;
      s.prev_epoch_latency = e.prev_epoch_latency;
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DigestSnapshot& a, const DigestSnapshot& b) {
              if (a.calls != b.calls) return a.calls > b.calls;
              return a.fingerprint < b.fingerprint;  // deterministic tie-break
            });
  return out;
}

size_t DigestStore::Size() const {
  MutexLock lock(&mu_);
  return map_.size();
}

void DigestStore::Clear() {
  MutexLock lock(&mu_);
  map_.clear();
}

void DigestStore::EvictOverCapacityLocked(size_t capacity) {
  while (map_.size() > capacity) {
    auto victim = map_.end();
    uint64_t victim_used = 0;
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (victim == map_.end() || it->second->last_used < victim_used) {
        victim = it;
        victim_used = it->second->last_used;
      }
    }
    map_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace taurus
