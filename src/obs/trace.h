#ifndef TAURUS_OBS_TRACE_H_
#define TAURUS_OBS_TRACE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace taurus {

/// One timed span of the per-query pipeline trace (DESIGN.md section 10
/// has the span taxonomy).
struct TraceSpan {
  int id = 0;
  int parent = -1;  ///< parent span id, -1 for the root
  int depth = 0;
  std::string name;
  double start_ms = 0.0;
  double end_ms = 0.0;
  bool ended = false;
  /// Structured attributes (route decision, fingerprint, cache hit,
  /// fallback status, workers used, ...), in set order.
  std::vector<std::pair<std::string, std::string>> attrs;

  double duration_ms() const { return end_ms - start_ms; }
  /// Last value set for `key`, or null.
  const std::string* FindAttr(std::string_view key) const;
};

/// Per-query span collector. Spans nest by open/close order (StartSpan
/// parents under the innermost open span), so the spans() vector is the
/// pre-order of the trace tree. Not thread-safe: one tracer belongs to the
/// session thread driving a query; worker-side actuals flow through the
/// ExecContext shard merge instead.
class Tracer {
 public:
  explicit Tracer(const Clock* clock) : clock_(clock) {}

  int StartSpan(std::string name);
  void EndSpan(int id);
  /// Attributes may be set after EndSpan (e.g. a failure status attached
  /// to an already-closed detour span).
  void SetAttr(int id, std::string key, std::string value);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  /// First span (pre-order) with `name`, or null.
  const TraceSpan* Find(std::string_view name) const;

  /// Names only, two-space indent per depth — the exact-tree assertion
  /// format for fake-clock tests.
  std::string TreeString() const;
  /// Human-readable render: name, duration, attributes.
  std::string Render() const;

 private:
  const Clock* clock_;
  std::vector<TraceSpan> spans_;
  std::vector<int> open_;  ///< stack of open span ids
};

/// RAII span that is a no-op on a null tracer, so instrumented code paths
/// cost nothing when tracing is disabled.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name) : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->StartSpan(name);
  }
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void End() {
    if (tracer_ != nullptr && !ended_) {
      tracer_->EndSpan(id_);
      ended_ = true;
    }
  }
  void Attr(const char* key, std::string value) {
    if (tracer_ != nullptr) tracer_->SetAttr(id_, key, std::move(value));
  }
  int id() const { return id_; }
  Tracer* tracer() const { return tracer_; }

 private:
  Tracer* tracer_;
  int id_ = -1;
  bool ended_ = false;
};

}  // namespace taurus

#endif  // TAURUS_OBS_TRACE_H_
