#ifndef TAURUS_OBS_METRICS_H_
#define TAURUS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/latency_histogram.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace taurus {

/// Monotonic counter (atomic; safe to increment from worker threads).
class Counter {
 public:
  void Increment(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-written-value gauge (atomic store/load).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Thread-safe registry of named counters, gauges and latency histograms.
/// Names follow the `taurus.<subsystem>.<name>` convention (DESIGN.md
/// section 10). Get* registers on first use and returns a stable pointer,
/// so hot paths resolve their metric once and then touch only an atomic.
///
/// The engine gives every Database its own registry (deterministic for
/// tests, mirroring MySQL's session-vs-global status split); Global() is
/// the process-wide instance for code without a Database at hand.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name) TAURUS_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) TAURUS_EXCLUDES(mu_);
  LatencyHistogram* GetHistogram(const std::string& name) TAURUS_EXCLUDES(mu_);

  /// One JSON object, keys sorted: counters as integers, gauges as
  /// numbers, histograms as {count, sum_ms, p50, p95, p99, max_ms}.
  std::string ToJson() const TAURUS_EXCLUDES(mu_);

  /// Flat (name, value-string) rows for the SHOW STATUS statement;
  /// histograms expand into `.count` / `.p50` / `.p95` / `.p99` /
  /// `.max_ms` rows.
  std::vector<std::pair<std::string, std::string>> Snapshot() const
      TAURUS_EXCLUDES(mu_);

  /// Zeroes every registered metric (registration survives).
  void Reset() TAURUS_EXCLUDES(mu_);

  static MetricsRegistry& Global();

 private:
  /// Leaf rank: registration/serialization only; metric objects are
  /// atomic, so hot-path updates never come near this lock.
  mutable Mutex mu_{LockRank::kMetricsRegistry, "obs.metrics_registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      TAURUS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      TAURUS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      TAURUS_GUARDED_BY(mu_);
};

}  // namespace taurus

#endif  // TAURUS_OBS_METRICS_H_
