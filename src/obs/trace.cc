#include "obs/trace.h"

#include <cstdio>

namespace taurus {

const std::string* TraceSpan::FindAttr(std::string_view key) const {
  for (auto it = attrs.rbegin(); it != attrs.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  return nullptr;
}

int Tracer::StartSpan(std::string name) {
  TraceSpan span;
  span.id = static_cast<int>(spans_.size());
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = static_cast<int>(open_.size());
  span.name = std::move(name);
  span.start_ms = clock_->NowMs();
  spans_.push_back(std::move(span));
  open_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::EndSpan(int id) {
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  TraceSpan& span = spans_[static_cast<size_t>(id)];
  if (span.ended) return;
  span.end_ms = clock_->NowMs();
  span.ended = true;
  // Close any children left open (defensive: an early return that skipped
  // an explicit End) down to and including this span.
  while (!open_.empty()) {
    int top = open_.back();
    open_.pop_back();
    TraceSpan& t = spans_[static_cast<size_t>(top)];
    if (!t.ended) {
      t.end_ms = span.end_ms;
      t.ended = true;
    }
    if (top == id) break;
  }
}

void Tracer::SetAttr(int id, std::string key, std::string value) {
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  spans_[static_cast<size_t>(id)].attrs.emplace_back(std::move(key),
                                                     std::move(value));
}

const TraceSpan* Tracer::Find(std::string_view name) const {
  for (const TraceSpan& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::string Tracer::TreeString() const {
  std::string out;
  for (const TraceSpan& span : spans_) {
    out.append(static_cast<size_t>(span.depth) * 2, ' ');
    out += span.name;
    out.push_back('\n');
  }
  return out;
}

std::string Tracer::Render() const {
  std::string out;
  for (const TraceSpan& span : spans_) {
    out.append(static_cast<size_t>(span.depth) * 2, ' ');
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %.3f ms", span.duration_ms());
    out += span.name;
    out += buf;
    for (const auto& [key, value] : span.attrs) {
      out += " " + key + "=" + value;
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace taurus
