#ifndef TAURUS_OBS_ESTIMATE_FEEDBACK_H_
#define TAURUS_OBS_ESTIMATE_FEEDBACK_H_

#include <string>
#include <vector>

#include "exec/op_actuals.h"
#include "exec/physical_plan.h"

namespace taurus {

/// q-error of a cardinality estimate: max(est/act, act/est), the standard
/// estimate-quality measure (>= 1, 1 = exact). Both sides are floored at
/// one row so empty results don't divide by zero; the floor is part of the
/// documented semantics (DESIGN.md section 10).
double QError(double est_rows, double actual_rows);

/// Estimate drift at one position of a block's best-position array (the
/// pre-order leaf list of the join tree — exactly where the plan converter
/// copies Orca's estimates over, Section 4.2.2).
struct PositionQError {
  int position = 0;
  std::string alias;       ///< leaf alias ("" for non-leaf positions)
  double est_rows = 0.0;
  double actual_rows = 0.0;  ///< per-loop average (rows / max(loops, 1))
  double q_error = 1.0;
};

/// Per-position q-errors for a block's join tree. Leaves that never
/// executed (e.g. behind a short-circuited join) are skipped.
std::vector<PositionQError> CollectPositionQErrors(
    const BlockPlan& plan, const OpActualsMap& actuals);

}  // namespace taurus

#endif  // TAURUS_OBS_ESTIMATE_FEEDBACK_H_
