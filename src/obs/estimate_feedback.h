#ifndef TAURUS_OBS_ESTIMATE_FEEDBACK_H_
#define TAURUS_OBS_ESTIMATE_FEEDBACK_H_

#include <string>
#include <vector>

#include "exec/op_actuals.h"
#include "exec/physical_plan.h"
#include "feedback/feedback_store.h"

namespace taurus {

/// q-error of a cardinality estimate: max(est/act, act/est), the standard
/// estimate-quality measure (>= 1, 1 = exact). Both sides are floored at
/// one row so empty results don't divide by zero; the floor is part of the
/// documented semantics (DESIGN.md section 10).
double QError(double est_rows, double actual_rows);

/// Estimate drift at one position of a block's best-position array (the
/// pre-order leaf list of the join tree — exactly where the plan converter
/// copies Orca's estimates over, Section 4.2.2).
struct PositionQError {
  int position = 0;
  std::string alias;       ///< leaf alias ("" for non-leaf positions)
  double est_rows = 0.0;
  double actual_rows = 0.0;  ///< per-loop average (rows / max(loops, 1))
  double q_error = 1.0;
};

/// Per-position q-errors for a block's join tree. Leaves that never
/// executed (e.g. behind a short-circuited join) are skipped.
std::vector<PositionQError> CollectPositionQErrors(
    const BlockPlan& plan, const OpActualsMap& actuals);

/// Harvests per-node actual cardinalities from one executed statement into
/// a feedback sample, keyed by the ref-set under each node (RefSetKey) so
/// the next optimization of the same fingerprint can look them up by memo
/// set regardless of join order (DESIGN.md section 11).
///
/// A node's actual is trusted only when its total row count equals the
/// serial cardinality of that subtree:
///   - loops == 1 (opened exactly once), or
///   - the node sits on the driving chain of a parallel-eligible plan,
///     where per-shard actuals merge by summation and loops counts morsels
///     — the summed rows are the serial total, identical for any worker
///     count.
/// kIndexLookup leaves are never harvested (their rows reflect one key
/// binding, not the leaf's cardinality). Where several nodes share a
/// ref-set (a residual Filter above its join), the topmost wins — its
/// output matches the memo's pooled-conjunct Rows(set) semantics. Walks
/// derived-table plans and UNION arms; estimates are recorded alongside so
/// the store can compute q-errors.
void HarvestFeedbackSample(const BlockPlan& plan, const OpActualsMap& actuals,
                           FeedbackSample* sample);

}  // namespace taurus

#endif  // TAURUS_OBS_ESTIMATE_FEEDBACK_H_
