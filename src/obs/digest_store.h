#ifndef TAURUS_OBS_DIGEST_STORE_H_
#define TAURUS_OBS_DIGEST_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/latency_histogram.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace taurus {

/// Statement-digest store knobs. Read live (like FeedbackConfig), so knob
/// changes apply to the next recorded query; changing them must be
/// quiesced relative to in-flight queries (the engine config contract).
struct DigestStoreConfig {
  bool enable = true;
  /// Max distinct digests kept; least-recently-executed evicted beyond.
  size_t capacity = 1024;
};

/// Aggregate latency summary small enough to keep two per epoch split
/// (count/sum/max, no buckets — the full log-bucketed histogram covers the
/// digest's lifetime).
struct LatencySummary {
  int64_t count = 0;
  double sum_ms = 0.0;
  double max_ms = 0.0;

  void Add(double ms) {
    ++count;
    sum_ms += ms;
    if (ms > max_ms) max_ms = ms;
  }
  void Merge(const LatencySummary& other) {
    count += other.count;
    sum_ms += other.sum_ms;
    if (other.max_ms > max_ms) max_ms = other.max_ms;
  }
  double mean_ms() const { return count > 0 ? sum_ms / count : 0.0; }
};

/// One finished query execution, as reported to DigestStore::Record.
/// `canonical` is only dereferenced when the digest is first seen (the
/// entry keeps its own copy), so the hot path never copies the statement
/// text.
struct DigestSample {
  uint64_t fingerprint = 0;
  const std::string* canonical = nullptr;
  bool used_orca = false;
  bool error = false;
  bool shed = false;
  bool fell_back = false;
  bool quarantine_hit = false;
  bool plan_cache_hit = false;
  int verifier_violations = 0;
  int64_t rows_returned = 0;
  /// optimize + execute wall time; also split per path below.
  double latency_ms = 0.0;
};

/// Point-in-time copy of one digest row (SHOW DIGESTS / DigestsJson).
struct DigestSnapshot {
  uint64_t fingerprint = 0;
  std::string statement;  ///< canonical text of the first-seen execution
  int64_t calls = 0;
  int64_t errors = 0;
  int64_t orca_calls = 0;
  int64_t mysql_calls = 0;
  int64_t shed = 0;
  int64_t fallbacks = 0;
  int64_t quarantine_hits = 0;
  int64_t verifier_violations = 0;
  int64_t plan_cache_hits = 0;
  int64_t rows_returned = 0;
  /// Lifetime log-bucketed latency distribution.
  int64_t latency_count = 0;
  double latency_sum_ms = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_max_ms = 0.0;
  /// Per-path splits (Orca detour vs MySQL path).
  LatencySummary orca_latency;
  LatencySummary mysql_latency;
  /// Plan-epoch split: `epoch` counts from 1 and increments whenever the
  /// digest's cached skeleton changed (DDL / ANALYZE / feedback drift /
  /// quarantine transition); `epoch_latency` covers executions since the
  /// last bump, `prev_epoch_latency` the epoch before it — the two-sided
  /// comparison that makes a feedback-loop plan regression visible from
  /// SQL.
  int64_t plan_epoch = 1;
  std::string epoch_cause;  ///< what bumped into the current epoch ("" = none)
  LatencySummary epoch_latency;
  LatencySummary prev_epoch_latency;
};

/// Thread-safe LRU-bounded aggregation table keyed by statement
/// fingerprint — the same fingerprint that keys the plan cache and
/// quarantine, so every surface talks about the same statement identity.
/// Record is one short leaf-ranked critical section (rank 140: nothing is
/// acquired under it) plus atomic histogram updates; Snapshot copies rows
/// out so renderers never hold the lock.
class DigestStore {
 public:
  explicit DigestStore(const DigestStoreConfig& config) : config_(config) {}
  DigestStore(const DigestStore&) = delete;
  DigestStore& operator=(const DigestStore&) = delete;

  /// Folds one finished execution into its digest (creating/evicting as
  /// needed). No-op when the store is disabled.
  void Record(const DigestSample& sample);

  /// Bumps `fingerprint`'s plan epoch: folds the current epoch's latency
  /// into the previous-epoch summary and starts a fresh one. Idempotent
  /// until the next execution — a bump is only applied when the current
  /// epoch has recorded at least one call, so the multiple invalidation
  /// hooks a single DDL can fire collapse into one visible epoch change.
  /// Returns true when the epoch actually advanced. Unknown fingerprints
  /// are ignored (their entry starts at epoch 1 anyway).
  bool BumpEpoch(uint64_t fingerprint, const char* cause);

  /// All digests, most-executed first.
  std::vector<DigestSnapshot> Snapshot() const;

  size_t Size() const;
  void Clear();

  int64_t records() const {
    return records_.load(std::memory_order_relaxed);
  }
  int64_t lru_evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  int64_t epoch_bumps() const {
    return epoch_bumps_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string statement;
    int64_t calls = 0;
    int64_t errors = 0;
    int64_t orca_calls = 0;
    int64_t mysql_calls = 0;
    int64_t shed = 0;
    int64_t fallbacks = 0;
    int64_t quarantine_hits = 0;
    int64_t verifier_violations = 0;
    int64_t plan_cache_hits = 0;
    int64_t rows_returned = 0;
    LatencyHistogram latency;
    LatencySummary orca_latency;
    LatencySummary mysql_latency;
    int64_t plan_epoch = 1;
    std::string epoch_cause;
    LatencySummary epoch_latency;
    LatencySummary prev_epoch_latency;
    /// Recency stamp for LRU eviction (executions, not epoch bumps).
    uint64_t last_used = 0;
  };

  /// Requires mu_: evicts least-recently-executed entries over capacity.
  void EvictOverCapacityLocked(size_t capacity) TAURUS_REQUIRES(mu_);

  const DigestStoreConfig& config_;
  mutable Mutex mu_{LockRank::kDigestStore, "obs.digest_store"};
  std::unordered_map<uint64_t, std::unique_ptr<Entry>> map_
      TAURUS_GUARDED_BY(mu_);
  uint64_t tick_ TAURUS_GUARDED_BY(mu_) = 0;

  std::atomic<int64_t> records_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> epoch_bumps_{0};
};

}  // namespace taurus

#endif  // TAURUS_OBS_DIGEST_STORE_H_
