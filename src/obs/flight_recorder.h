#ifndef TAURUS_OBS_FLIGHT_RECORDER_H_
#define TAURUS_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/exec_profile.h"
#include "obs/trace.h"

namespace taurus {

/// Flight-recorder knobs. Read live; capacity changes apply lazily on the
/// next Record and must be quiesced relative to in-flight queries (the
/// engine config contract).
struct FlightRecorderConfig {
  bool enable = true;
  /// Ring slots: the memory bound is capacity x sizeof(FlightRecord) plus
  /// whatever traces are pinned. 256 slots comfortably outlives the
  /// "post-mortem after 100 more queries" requirement.
  size_t capacity = 256;
  /// Pin the full span tree of aborted / shed / quarantined / fallen-back
  /// queries into their ring slot, so the post-mortem survives after
  /// Database::last_trace() is overwritten by later queries.
  bool pin_aborted_traces = true;
};

/// One query event in the ring. Copyable: Snapshot/Find hand out copies so
/// readers never hold the recorder lock while rendering.
struct FlightRecord {
  /// Monotonic 1-based event id — the <n> of SHOW PROFILE FOR <n>.
  uint64_t seq = 0;
  uint64_t fingerprint = 0;
  uint64_t session_id = 0;  ///< 0 = direct Database call (no session)
  /// "ok", or the failure Status::ToString() with its structured origin
  /// payload (e.g. "[verify.skeleton/S004]").
  std::string status = "ok";
  bool error = false;
  /// Admission outcome: "direct", "queued", "shed" or "rejected".
  std::string admission = "direct";
  double admission_wait_ms = 0.0;
  bool used_orca = false;
  bool fell_back = false;
  bool shed = false;
  bool quarantine_hit = false;
  bool plan_cache_hit = false;
  double optimize_ms = 0.0;
  double execute_ms = 0.0;
  /// Trace-root wall time when the query was traced (query span duration),
  /// optimize + execute otherwise.
  double total_ms = 0.0;
  int64_t rows_returned = 0;
  int workers = 1;
  int64_t batches = 0;
  /// Per-worker morsel timing (empty unless profiling was enabled).
  ExecProfile profile;
  /// Full span tree, pinned for aborted/shed/quarantined/fallen-back
  /// queries when FlightRecorderConfig::pin_aborted_traces is on.
  std::shared_ptr<const Tracer> pinned_trace;
};

/// Fixed-size lock-minimal ring buffer of recent query events. Record is a
/// single short critical section under a leaf-ranked mutex (rank 150:
/// nothing is acquired under it) — always on at near-zero cost. Slots are
/// overwritten oldest-first; a pinned trace lives exactly as long as its
/// slot.
class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightRecorderConfig& config)
      : config_(config) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Writes one event, assigning and returning its sequence number
  /// (0 when the recorder is disabled).
  uint64_t Record(FlightRecord record);

  /// Events currently in the ring, oldest first.
  std::vector<FlightRecord> Snapshot() const;

  /// Copies the event with sequence number `seq` into `out`; false when it
  /// has been overwritten (or never existed).
  bool Find(uint64_t seq, FlightRecord* out) const;

  size_t Size() const;
  void Clear();

  int64_t records() const {
    return records_.load(std::memory_order_relaxed);
  }
  /// Events currently holding a pinned trace.
  int64_t pinned() const;

 private:
  /// Requires mu_: grows/shrinks the ring to the configured capacity,
  /// keeping the newest events.
  void ApplyCapacityLocked() TAURUS_REQUIRES(mu_);

  const FlightRecorderConfig& config_;
  mutable Mutex mu_{LockRank::kFlightRecorder, "obs.flight_recorder"};
  /// Ring storage ordered oldest-to-newest starting at next_.
  std::vector<FlightRecord> ring_ TAURUS_GUARDED_BY(mu_);
  size_t next_ TAURUS_GUARDED_BY(mu_) = 0;
  uint64_t seq_ TAURUS_GUARDED_BY(mu_) = 0;

  std::atomic<int64_t> records_{0};
};

}  // namespace taurus

#endif  // TAURUS_OBS_FLIGHT_RECORDER_H_
