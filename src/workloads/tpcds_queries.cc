#include "workloads/tpcds.h"

#include <map>

namespace taurus {

namespace {

const char* kCats[] = {"Books", "Electronics", "Home", "Jewelry", "Men",
                       "Music", "Shoes", "Sports", "Women", "Children"};
const char* kEdu[] = {"Primary", "Secondary", "College", "2 yr Degree",
                      "4 yr Degree", "Advanced Degree", "Unknown"};
/// Per-channel column names used by the query templates.
struct Channel {
  const char* fact;
  const char* date_fk;
  const char* item_fk;
  const char* cust_fk;
  const char* addr_fk;
  const char* cdemo_fk;  // nullptr for web
  const char* hdemo_fk;  // nullptr for web
  const char* price;
  const char* quantity;
};

const Channel kChannels[] = {
    {"store_sales", "ss_sold_date_sk", "ss_item_sk", "ss_customer_sk",
     "ss_addr_sk", "ss_cdemo_sk", "ss_hdemo_sk", "ss_ext_sales_price",
     "ss_quantity"},
    {"catalog_sales", "cs_sold_date_sk", "cs_item_sk", "cs_bill_customer_sk",
     "cs_bill_addr_sk", "cs_bill_cdemo_sk", "cs_bill_hdemo_sk",
     "cs_ext_sales_price", "cs_quantity"},
    {"web_sales", "ws_sold_date_sk", "ws_item_sk", "ws_bill_customer_sk",
     "ws_bill_addr_sk", nullptr, nullptr, "ws_ext_sales_price",
     "ws_quantity"},
};

std::string Num(int64_t v) { return std::to_string(v); }

/// Template family 0: channel star report (3 tables).
std::string StarReport(int i) {
  const Channel& ch = kChannels[i % 3];
  int year = 1998 + i % 5;
  std::string cat1 = kCats[i % 10];
  std::string cat2 = kCats[(i + 3) % 10];
  return std::string("SELECT i_category, d_moy, SUM(") + ch.price +
         ") AS total_sales, COUNT(*) AS cnt FROM " + ch.fact +
         ", date_dim, item WHERE " + ch.date_fk + " = d_date_sk AND " +
         ch.item_fk + " = i_item_sk AND d_year = " + Num(year) +
         " AND i_category IN ('" + cat1 + "', '" + cat2 +
         "') AND d_moy <= " + Num(6 + i % 7) +
         " GROUP BY i_category, d_moy ORDER BY total_sales DESC, "
         "i_category, d_moy LIMIT 100";
}

/// Template family 1: customer/address star (5 tables).
std::string AddressStar(int i) {
  const Channel& ch = kChannels[i % 3];
  int year = 1998 + i % 5;
  int moy = 1 + i % 12;
  std::string cat = kCats[(i + 5) % 10];
  return std::string("SELECT ca_state, COUNT(*) AS cnt, SUM(") + ch.price +
         ") AS amt FROM " + ch.fact +
         ", date_dim, item, customer, customer_address WHERE " + ch.date_fk +
         " = d_date_sk AND " + ch.item_fk + " = i_item_sk AND " +
         ch.cust_fk + " = c_customer_sk AND c_current_addr_sk = "
         "ca_address_sk AND d_year = " + Num(year) +
         " AND d_moy = " + Num(moy) + " AND i_category = '" + cat +
         "' GROUP BY ca_state ORDER BY cnt DESC, ca_state LIMIT " +
         Num(80 + i % 20);
}

/// Template family 2: demographics snowflake (store/catalog only).
std::string DemographicsStar(int i) {
  const Channel& ch = kChannels[i % 2];
  int year = 1998 + i % 5;
  std::string edu = kEdu[i % 7];
  int dep = i % 7;
  return std::string(
             "SELECT cd_gender, cd_marital_status, COUNT(*) AS cnt, AVG(") +
         ch.quantity + ") AS avg_qty FROM " + ch.fact +
         ", customer_demographics, household_demographics, date_dim WHERE " +
         ch.cdemo_fk + " = cd_demo_sk AND " + ch.hdemo_fk +
         " = hd_demo_sk AND " + ch.date_fk + " = d_date_sk AND d_year = " +
         Num(year) + " AND cd_education_status = '" + edu +
         "' AND hd_dep_count = " + Num(dep) + " AND hd_vehicle_count <= " +
         Num(1 + i % 4) +
         " GROUP BY cd_gender, cd_marital_status "
         "ORDER BY cd_gender, cd_marital_status";
}

/// Template family 3: EXISTS cross-channel (semi-join).
std::string ExistsCrossChannel(int i) {
  const Channel& a = kChannels[i % 3];
  const Channel& b = kChannels[(i + 1) % 3];
  int year = 1998 + i % 5;
  int moy = 1 + i % 12;
  return std::string(
             "SELECT DISTINCT c_last_name, c_first_name, c_customer_id "
             "FROM customer, ") +
         a.fact + ", date_dim WHERE c_customer_sk = " + a.cust_fk +
         " AND " + a.date_fk + " = d_date_sk AND d_year = " + Num(year) +
         " AND d_moy = " + Num(moy) + " AND EXISTS (SELECT * FROM " +
         b.fact + ", date_dim d2 WHERE " + b.cust_fk +
         " = c_customer_sk AND " + b.date_fk +
         " = d2.d_date_sk AND d2.d_year = " + Num(year) +
         ") AND c_preferred_cust_flag = '" + (i % 2 ? "Y" : "N") +
         "' ORDER BY c_last_name, c_first_name, c_customer_id LIMIT 100";
}

/// Template family 4: NOT EXISTS cross-channel (anti-join).
std::string AntiCrossChannel(int i) {
  const Channel& a = kChannels[i % 3];
  const Channel& b = kChannels[(i + 2) % 3];
  int year = 1998 + i % 5;
  int moy = 1 + i % 12;
  return std::string(
             "SELECT DISTINCT c_last_name, c_first_name, c_customer_id "
             "FROM customer, ") +
         a.fact + ", date_dim WHERE c_customer_sk = " + a.cust_fk +
         " AND " + a.date_fk + " = d_date_sk AND d_year = " + Num(year) +
         " AND d_moy = " + Num(moy) + " AND NOT EXISTS (SELECT * FROM " +
         b.fact + ", date_dim d2 WHERE " + b.cust_fk +
         " = c_customer_sk AND " + b.date_fk +
         " = d2.d_date_sk AND d2.d_year = " + Num(year) + " AND d2.d_moy = " +
         Num(moy) + ") ORDER BY c_last_name, c_first_name, c_customer_id "
         "LIMIT " + Num(60 + i % 40);
}

/// Template family 5: CTE year-over-year self-join.
std::string YearOverYear(int i) {
  const Channel& ch = kChannels[i % 3];
  int inst = i / 8;  // family instance: varies where i % k cycles collide
  int year = 1998 + inst % 4;
  return std::string("WITH year_total AS (SELECT ") + ch.cust_fk +
         " AS cid, d_year AS y, SUM(" + ch.price + ") AS total FROM " +
         ch.fact + ", date_dim WHERE " + ch.date_fk +
         " = d_date_sk AND d_year BETWEEN " + Num(year) + " AND " +
         Num(year + 1) + " GROUP BY " + ch.cust_fk +
         ", d_year) SELECT t1.cid, t1.total, t2.total FROM year_total t1, "
         "year_total t2 WHERE t1.cid = t2.cid AND t1.y = " + Num(year) +
         " AND t2.y = " + Num(year + 1) +
         " AND t2.total > 1." + Num((i + inst) % 9) +
         " * t1.total ORDER BY t1.cid LIMIT 100";
}

/// Template family 6: per-item average subquery filter.
std::string AvgSubqueryFilter(int i) {
  const Channel& ch = kChannels[i % 3];
  int year = 1998 + i % 5;
  std::string cat = kCats[(i + 7) % 10];
  return std::string("SELECT COUNT(*) AS cnt, SUM(") + ch.price +
         ") AS amt FROM " + ch.fact + ", item, date_dim WHERE " +
         ch.item_fk + " = i_item_sk AND " + ch.date_fk +
         " = d_date_sk AND d_year = " + Num(year) + " AND i_category = '" +
         cat + "' AND " + ch.price + " > (SELECT 1." + Num(1 + i % 8) +
         " * AVG(f2." + ch.price +
         ") FROM " + ch.fact + " f2 WHERE f2." + ch.item_fk +
         " = i_item_sk)";
}

/// Template family 7: union multi-channel totals by year.
std::string UnionChannels(int i) {
  int inst = i / 8;  // family instance
  int moy = 1 + inst % 12;
  std::string m = Num(moy);
  return
      "SELECT d_year, SUM(p) AS total FROM ("
      "SELECT d_year AS d_year, ss_ext_sales_price AS p "
      "FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk AND "
      "d_moy = " + m +
      " UNION ALL SELECT d_year, cs_ext_sales_price FROM catalog_sales, "
      "date_dim WHERE cs_sold_date_sk = d_date_sk AND d_moy = " + m +
      " UNION ALL SELECT d_year, ws_ext_sales_price FROM web_sales, "
      "date_dim WHERE ws_sold_date_sk = d_date_sk AND d_moy = " + m +
      ") x WHERE d_year >= " + Num(1998 + (i + inst) % 4) +
      " GROUP BY d_year ORDER BY d_year";
}

/// Hand-written adaptations of the queries the paper highlights.
std::map<int, std::string> HandWrittenQueries() {
  std::map<int, std::string> q;

  // Q1 (198X in the paper): store-returns CTE + correlated per-store avg.
  q[1] = R"(WITH customer_total_return AS (
  SELECT sr_customer_sk AS ctr_customer_sk, sr_store_sk AS ctr_store_sk,
         SUM(sr_return_amt) AS ctr_total_return
  FROM store_returns, date_dim
  WHERE sr_returned_date_sk = d_date_sk AND d_year = 2000
  GROUP BY sr_customer_sk, sr_store_sk)
SELECT c_customer_id
FROM customer_total_return ctr1, store, customer
WHERE ctr1.ctr_total_return > (SELECT AVG(ctr_total_return) * 1.2
                               FROM customer_total_return ctr2
                               WHERE ctr1.ctr_store_sk = ctr2.ctr_store_sk)
  AND s_store_sk = ctr1.ctr_store_sk AND s_state = 'TN'
  AND ctr1.ctr_customer_sk = c_customer_sk
ORDER BY c_customer_id
LIMIT 100)";

  // Q6 (123X): items priced 20% above their category average.
  q[6] = R"(SELECT ca_state, COUNT(*) AS cnt
FROM customer_address, customer, store_sales, date_dim, item
WHERE ca_address_sk = c_current_addr_sk
  AND c_customer_sk = ss_customer_sk AND ss_sold_date_sk = d_date_sk
  AND ss_item_sk = i_item_sk AND d_year = 2001 AND d_moy = 1
  AND i_current_price > 1.2 * (SELECT AVG(j.i_current_price) FROM item j
                               WHERE j.i_category = item.i_category)
GROUP BY ca_state
HAVING COUNT(*) >= 3
ORDER BY cnt, ca_state
LIMIT 100)";

  // Q9: CASE over bucketed scalar subqueries (paper's Listing 6 shape;
  // the subquery form avoids redundant evaluation per bucket).
  q[9] = R"(SELECT
  CASE WHEN (SELECT COUNT(*) FROM store_sales
             WHERE ss_quantity BETWEEN 1 AND 20) > 3000
       THEN (SELECT AVG(ss_ext_sales_price) FROM store_sales
             WHERE ss_quantity BETWEEN 1 AND 20)
       ELSE (SELECT AVG(ss_net_paid) FROM store_sales
             WHERE ss_quantity BETWEEN 1 AND 20) END AS bucket1,
  CASE WHEN (SELECT COUNT(*) FROM store_sales
             WHERE ss_quantity BETWEEN 21 AND 40) > 3000
       THEN (SELECT AVG(ss_ext_sales_price) FROM store_sales
             WHERE ss_quantity BETWEEN 21 AND 40)
       ELSE (SELECT AVG(ss_net_paid) FROM store_sales
             WHERE ss_quantity BETWEEN 21 AND 40) END AS bucket2,
  CASE WHEN (SELECT COUNT(*) FROM store_sales
             WHERE ss_quantity BETWEEN 41 AND 60) > 3000
       THEN (SELECT AVG(ss_ext_sales_price) FROM store_sales
             WHERE ss_quantity BETWEEN 41 AND 60)
       ELSE (SELECT AVG(ss_net_paid) FROM store_sales
             WHERE ss_quantity BETWEEN 41 AND 60) END AS bucket3,
  CASE WHEN (SELECT COUNT(*) FROM store_sales
             WHERE ss_quantity BETWEEN 61 AND 80) > 3000
       THEN (SELECT AVG(ss_ext_sales_price) FROM store_sales
             WHERE ss_quantity BETWEEN 61 AND 80)
       ELSE (SELECT AVG(ss_net_paid) FROM store_sales
             WHERE ss_quantity BETWEEN 61 AND 80) END AS bucket4,
  CASE WHEN (SELECT COUNT(*) FROM store_sales
             WHERE ss_quantity BETWEEN 81 AND 100) > 3000
       THEN (SELECT AVG(ss_ext_sales_price) FROM store_sales
             WHERE ss_quantity BETWEEN 81 AND 100)
       ELSE (SELECT AVG(ss_net_paid) FROM store_sales
             WHERE ss_quantity BETWEEN 81 AND 100) END AS bucket5
FROM customer_demographics
WHERE cd_demo_sk = 1)";

  // Q14: many CTEs with multi-way joins; the EXHAUSTIVE2 compile-time
  // stress case (Table 1 discussion).
  q[14] = R"(WITH cross_items AS (
  SELECT i_item_sk AS cross_item_sk
  FROM item,
    (SELECT iss.i_brand_id AS brand_id, iss.i_class AS class_id,
            iss.i_category AS category_id
     FROM store_sales, item iss, date_dim d1
     WHERE ss_item_sk = iss.i_item_sk AND ss_sold_date_sk = d1.d_date_sk
       AND d1.d_year BETWEEN 1999 AND 2001) x
  WHERE i_brand_id = brand_id AND i_class = class_id
    AND i_category = category_id),
avg_sales AS (
  SELECT AVG(quantity * list_price) AS average_sales
  FROM (SELECT ss_quantity AS quantity, ss_list_price AS list_price
        FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk AND d_year BETWEEN 1999 AND 2001
        UNION ALL
        SELECT cs_quantity, cs_list_price
        FROM catalog_sales, date_dim
        WHERE cs_sold_date_sk = d_date_sk AND d_year BETWEEN 1999 AND 2001
        UNION ALL
        SELECT ws_quantity, ws_sales_price
        FROM web_sales, date_dim
        WHERE ws_sold_date_sk = d_date_sk AND d_year BETWEEN 1999 AND 2001)
       xx)
SELECT i_brand_id, i_class, i_category,
  SUM(ss_quantity * ss_list_price) AS sales, COUNT(*) AS number_sales
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
  AND d_year = 2001 AND d_moy = 11
  AND ss_item_sk IN (SELECT cross_item_sk FROM cross_items)
GROUP BY i_brand_id, i_class, i_category
HAVING SUM(ss_quantity * ss_list_price) >
       (SELECT average_sales FROM avg_sales)
ORDER BY sales DESC, i_brand_id
LIMIT 100)";

  // Q17 (>=10X): store sale -> store return -> catalog re-purchase.
  q[17] = R"(SELECT i_item_id, i_item_desc, s_state,
  COUNT(ss_quantity) AS store_sales_cnt,
  AVG(ss_quantity) AS store_sales_avg,
  COUNT(sr_return_quantity) AS store_returns_cnt,
  COUNT(cs_quantity) AS catalog_sales_cnt
FROM store_sales, store_returns, catalog_sales,
     date_dim d1, date_dim d2, date_dim d3, store, item
WHERE d1.d_qoy = 1 AND d1.d_year = 2000 AND d1.d_date_sk = ss_sold_date_sk
  AND i_item_sk = ss_item_sk AND s_store_sk = ss_store_sk
  AND ss_customer_sk = sr_customer_sk AND ss_item_sk = sr_item_sk
  AND ss_ticket_number = sr_ticket_number
  AND sr_returned_date_sk = d2.d_date_sk
  AND d2.d_qoy BETWEEN 1 AND 3 AND d2.d_year = 2000
  AND sr_customer_sk = cs_bill_customer_sk AND sr_item_sk = cs_item_sk
  AND cs_sold_date_sk = d3.d_date_sk
  AND d3.d_qoy BETWEEN 1 AND 3 AND d3.d_year = 2000
GROUP BY i_item_id, i_item_desc, s_state
ORDER BY i_item_id, i_item_desc, s_state
LIMIT 100)";

  // Q24 (>=10X): ssales CTE + HAVING over a second aggregation.
  q[24] = R"(WITH ssales AS (
  SELECT c_last_name, c_first_name, s_store_name, i_color,
         SUM(ss_net_paid) AS netpaid
  FROM store_sales, store_returns, store, item, customer
  WHERE ss_ticket_number = sr_ticket_number AND ss_item_sk = sr_item_sk
    AND ss_customer_sk = c_customer_sk AND ss_item_sk = i_item_sk
    AND ss_store_sk = s_store_sk AND s_state = 'TN'
  GROUP BY c_last_name, c_first_name, s_store_name, i_color)
SELECT c_last_name, c_first_name, s_store_name, SUM(netpaid) AS paid
FROM ssales
WHERE i_color = 'azure'
GROUP BY c_last_name, c_first_name, s_store_name
HAVING SUM(netpaid) > (SELECT 0.05 * AVG(netpaid) FROM ssales)
ORDER BY c_last_name, c_first_name, s_store_name
LIMIT 100)";

  // Q31 (>=10X): county quarter-over-quarter across two channels.
  q[31] = R"(WITH ss AS (
  SELECT ca_county, d_qoy, SUM(ss_ext_sales_price) AS store_sales_v
  FROM store_sales, date_dim, customer_address
  WHERE ss_sold_date_sk = d_date_sk AND ss_addr_sk = ca_address_sk
    AND d_year = 2000
  GROUP BY ca_county, d_qoy),
ws AS (
  SELECT ca_county, d_qoy, SUM(ws_ext_sales_price) AS web_sales_v
  FROM web_sales, date_dim, customer_address
  WHERE ws_sold_date_sk = d_date_sk AND ws_bill_addr_sk = ca_address_sk
    AND d_year = 2000
  GROUP BY ca_county, d_qoy)
SELECT ss1.ca_county, ss1.store_sales_v, ss2.store_sales_v AS q2_store,
       ws1.web_sales_v, ws2.web_sales_v AS q2_web
FROM ss ss1, ss ss2, ws ws1, ws ws2
WHERE ss1.d_qoy = 1 AND ss2.d_qoy = 2 AND ss1.ca_county = ss2.ca_county
  AND ws1.d_qoy = 1 AND ws2.d_qoy = 2 AND ws1.ca_county = ws2.ca_county
  AND ss1.ca_county = ws1.ca_county
  AND ws2.web_sales_v * ss1.store_sales_v >
      ws1.web_sales_v * ss2.store_sales_v
ORDER BY ss1.ca_county)";

  // Q32 (>=10X): excessive catalog discounts vs the per-item average.
  q[32] = R"(SELECT SUM(cs_ext_discount_amt) AS excess_discount_amount
FROM catalog_sales, item, date_dim
WHERE i_manufact_id = 7 AND i_item_sk = cs_item_sk
  AND d_date_sk = cs_sold_date_sk AND d_year = 2000
  AND d_moy BETWEEN 1 AND 3
  AND cs_ext_discount_amt > (SELECT 1.3 * AVG(cs2.cs_ext_discount_amt)
                             FROM catalog_sales cs2, date_dim d2
                             WHERE cs2.cs_item_sk = i_item_sk
                               AND d2.d_date_sk = cs2.cs_sold_date_sk
                               AND d2.d_year = 2000
                               AND d2.d_moy BETWEEN 1 AND 3)
LIMIT 100)";

  // Q41 (222X): the OR-refactoring showcase — the self-join condition
  // repeats in every OR branch (Section 6.2).
  q[41] = R"(SELECT DISTINCT i_manufact
FROM item i1
WHERE i_manufact_id BETWEEN 1 AND 8
  AND (SELECT COUNT(*) FROM item
       WHERE (item.i_manufact = i1.i_manufact AND i_category = 'Women'
              AND i_color IN ('azure', 'blue'))
          OR (item.i_manufact = i1.i_manufact AND i_category = 'Men'
              AND i_color IN ('black', 'brown'))
          OR (item.i_manufact = i1.i_manufact AND i_category = 'Home'
              AND i_color IN ('coral', 'cream'))
          OR (item.i_manufact = i1.i_manufact AND i_category = 'Sports'
              AND i_color IN ('cyan', 'forest'))) > 0
ORDER BY i_manufact
LIMIT 100)";

  // Q56 (the short query Orca loses on, Fig. 12): per-color totals across
  // the three channels.
  q[56] = R"(WITH ss AS (
  SELECT i_item_id, SUM(ss_ext_sales_price) AS total_sales
  FROM store_sales, date_dim, item
  WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
    AND i_color IN ('azure', 'beige') AND d_year = 2000 AND d_moy = 2
  GROUP BY i_item_id),
cs AS (
  SELECT i_item_id, SUM(cs_ext_sales_price) AS total_sales
  FROM catalog_sales, date_dim, item
  WHERE cs_sold_date_sk = d_date_sk AND cs_item_sk = i_item_sk
    AND i_color IN ('azure', 'beige') AND d_year = 2000 AND d_moy = 2
  GROUP BY i_item_id),
ws AS (
  SELECT i_item_id, SUM(ws_ext_sales_price) AS total_sales
  FROM web_sales, date_dim, item
  WHERE ws_sold_date_sk = d_date_sk AND ws_item_sk = i_item_sk
    AND i_color IN ('azure', 'beige') AND d_year = 2000 AND d_moy = 2
  GROUP BY i_item_id)
SELECT i_item_id, SUM(total_sales) AS total
FROM (SELECT * FROM ss UNION ALL SELECT * FROM cs
      UNION ALL SELECT * FROM ws) tmp
GROUP BY i_item_id
ORDER BY total, i_item_id
LIMIT 100)";

  // Q58 (>=10X): items selling comparably across all three channels in
  // one week.
  q[58] = R"(WITH ss_items AS (
  SELECT i_item_id AS item_id, SUM(ss_ext_sales_price) AS ss_item_rev
  FROM store_sales, item, date_dim
  WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
    AND d_week_seq = 110
  GROUP BY i_item_id),
cs_items AS (
  SELECT i_item_id AS item_id, SUM(cs_ext_sales_price) AS cs_item_rev
  FROM catalog_sales, item, date_dim
  WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
    AND d_week_seq = 110
  GROUP BY i_item_id),
ws_items AS (
  SELECT i_item_id AS item_id, SUM(ws_ext_sales_price) AS ws_item_rev
  FROM web_sales, item, date_dim
  WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk
    AND d_week_seq = 110
  GROUP BY i_item_id)
SELECT ss_items.item_id, ss_item_rev, cs_item_rev, ws_item_rev
FROM ss_items, cs_items, ws_items
WHERE ss_items.item_id = cs_items.item_id
  AND ss_items.item_id = ws_items.item_id
  AND ss_item_rev BETWEEN 0.2 * cs_item_rev AND 5 * cs_item_rev
  AND ss_item_rev BETWEEN 0.2 * ws_item_rev AND 5 * ws_item_rev
ORDER BY ss_items.item_id
LIMIT 100)";

  // Q64: a wide CTE join consumed twice — the other EXHAUSTIVE2
  // compile-time stress case (Table 1 discussion).
  q[64] = R"(WITH cs_ui AS (
  SELECT cs_item_sk AS ui_item_sk, SUM(cs_ext_sales_price) AS sale
  FROM catalog_sales, catalog_returns
  WHERE cs_item_sk = cr_item_sk AND cs_order_number = cr_order_number
  GROUP BY cs_item_sk
  HAVING SUM(cs_ext_sales_price) > 2 * SUM(cr_return_amount)),
cross_sales AS (
  SELECT i_item_id AS item_id, i_item_sk AS item_sk,
         s_store_name AS store_name, d1.d_year AS syear,
         COUNT(*) AS cnt, SUM(ss_wholesale_cost) AS s1,
         SUM(ss_list_price) AS s2
  FROM store_sales, store_returns, cs_ui, date_dim d1, store, item,
       customer, customer_demographics cd1,
       household_demographics hd1, customer_address ad1, promotion
  WHERE ss_store_sk = s_store_sk AND ss_sold_date_sk = d1.d_date_sk
    AND ss_customer_sk = c_customer_sk AND ss_cdemo_sk = cd1.cd_demo_sk
    AND ss_hdemo_sk = hd1.hd_demo_sk AND ss_addr_sk = ad1.ca_address_sk
    AND ss_item_sk = i_item_sk AND ss_item_sk = sr_item_sk
    AND ss_ticket_number = sr_ticket_number
    AND ss_item_sk = cs_ui.ui_item_sk AND ss_promo_sk = p_promo_sk
  GROUP BY i_item_id, i_item_sk, s_store_name, d1.d_year)
SELECT cs1.item_id, cs1.store_name, cs1.syear, cs1.cnt, cs2.syear AS year2,
       cs2.cnt AS cnt2
FROM cross_sales cs1, cross_sales cs2
WHERE cs1.item_sk = cs2.item_sk AND cs1.syear = 2000 AND cs2.syear = 2001
  AND cs2.cnt >= cs1.cnt
ORDER BY cs1.item_id, cs1.store_name
LIMIT 100)";

  // Q72 (8.5X, the paper's Section 3.1 running example, Listing 1): the
  // 11-table snowflake over catalog_sales and inventory.
  q[72] = R"(SELECT i_item_desc, w_warehouse_name, d1.d_week_seq,
  SUM(CASE WHEN p_promo_sk IS NULL THEN 1 ELSE 0 END) AS no_promo,
  SUM(CASE WHEN p_promo_sk IS NOT NULL THEN 1 ELSE 0 END) AS promo,
  COUNT(*) AS total_cnt
FROM catalog_sales
JOIN inventory ON (cs_item_sk = inv_item_sk)
JOIN warehouse ON (w_warehouse_sk = inv_warehouse_sk)
JOIN item ON (i_item_sk = cs_item_sk)
JOIN customer_demographics ON (cs_bill_cdemo_sk = cd_demo_sk)
JOIN household_demographics ON (cs_bill_hdemo_sk = hd_demo_sk)
JOIN date_dim d1 ON (cs_sold_date_sk = d1.d_date_sk)
JOIN date_dim d2 ON (inv_date_sk = d2.d_date_sk)
JOIN date_dim d3 ON (cs_ship_date_sk = d3.d_date_sk)
LEFT OUTER JOIN promotion ON (cs_promo_sk = p_promo_sk)
LEFT OUTER JOIN catalog_returns ON (cr_item_sk = cs_item_sk
  AND cr_order_number = cs_order_number)
WHERE d1.d_week_seq = d2.d_week_seq
  AND inv_quantity_on_hand < cs_quantity
  AND d3.d_date > CAST(d1.d_date AS DATE) + INTERVAL '5' DAY
  AND hd_buy_potential = '501-1000'
  AND d1.d_year = 1999 AND cd_marital_status = 'D'
GROUP BY i_item_desc, w_warehouse_name, d1.d_week_seq
ORDER BY total_cnt DESC, i_item_desc, w_warehouse_name, d1.d_week_seq
LIMIT 100)";

  // Q81 (>=10X): catalog-returns analog of Q1, keyed by state.
  q[81] = R"(WITH customer_total_return AS (
  SELECT cr_returning_customer_sk AS ctr_customer_sk,
         ca_state AS ctr_state, SUM(cr_return_amount) AS ctr_total_return
  FROM catalog_returns, date_dim, customer_address, customer
  WHERE cr_returned_date_sk = d_date_sk AND d_year = 2000
    AND cr_returning_customer_sk = c_customer_sk
    AND c_current_addr_sk = ca_address_sk
  GROUP BY cr_returning_customer_sk, ca_state)
SELECT c_customer_id, c_first_name, c_last_name, ctr_total_return
FROM customer_total_return ctr1, customer_address, customer
WHERE ctr1.ctr_total_return > (SELECT AVG(ctr_total_return) * 1.2
                               FROM customer_total_return ctr2
                               WHERE ctr1.ctr_state = ctr2.ctr_state)
  AND ca_address_sk = c_current_addr_sk AND ca_state = 'GA'
  AND ctr1.ctr_customer_sk = c_customer_sk
ORDER BY c_customer_id, ctr_total_return
LIMIT 100)";

  // Q92 (>=10X): web analog of Q32.
  q[92] = R"(SELECT SUM(ws_ext_discount_amt) AS excess_discount_amount
FROM web_sales, item, date_dim
WHERE i_manufact_id = 3 AND i_item_sk = ws_item_sk
  AND d_date_sk = ws_sold_date_sk AND d_year = 2001
  AND d_moy BETWEEN 1 AND 3
  AND ws_ext_discount_amt > (SELECT 1.3 * AVG(ws2.ws_ext_discount_amt)
                             FROM web_sales ws2, date_dim d2
                             WHERE ws2.ws_item_sk = i_item_sk
                               AND d2.d_date_sk = ws2.ws_sold_date_sk
                               AND d2.d_year = 2001
                               AND d2.d_moy BETWEEN 1 AND 3)
LIMIT 100)";

  return q;
}

}  // namespace

const std::vector<std::string>& TpcdsQueries() {
  static const std::vector<std::string>* kQueries = [] {
    auto* out = new std::vector<std::string>();
    std::map<int, std::string> hand = HandWrittenQueries();
    for (int i = 1; i <= 99; ++i) {
      auto it = hand.find(i);
      if (it != hand.end()) {
        out->push_back(it->second);
        continue;
      }
      switch (i % 8) {
        case 0:
          out->push_back(StarReport(i));
          break;
        case 1:
          out->push_back(AddressStar(i));
          break;
        case 2:
          out->push_back(DemographicsStar(i));
          break;
        case 3:
          out->push_back(ExistsCrossChannel(i));
          break;
        case 4:
          out->push_back(AntiCrossChannel(i));
          break;
        case 5:
          out->push_back(YearOverYear(i));
          break;
        case 6:
          out->push_back(AvgSubqueryFilter(i));
          break;
        default:
          out->push_back(UnionChannels(i));
          break;
      }
    }
    return out;
  }();
  return *kQueries;
}

}  // namespace taurus
