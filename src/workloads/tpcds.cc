#include "workloads/tpcds.h"

#include <algorithm>

#include "common/rng.h"
#include "types/datetime.h"

namespace taurus {

namespace {

const char* kCategories[] = {"Books", "Electronics", "Home", "Jewelry",
                             "Men", "Music", "Shoes", "Sports", "Women",
                             "Children"};
const char* kClasses[] = {"accent", "athletic", "classical", "dresses",
                          "earings", "fiction", "history", "kids",
                          "mystery", "pop", "romance", "school"};
const char* kColors[] = {"aquamarine", "azure", "beige", "black", "blue",
                         "brown", "coral", "cream", "cyan", "forest",
                         "gold", "green"};
const char* kBuyPotentials[] = {"0-500", "501-1000", "1001-5000",
                                ">10000", "5001-10000", "Unknown"};
const char* kMarital[] = {"S", "M", "D", "W", "U"};
const char* kEducation[] = {"Primary", "Secondary", "College",
                            "2 yr Degree", "4 yr Degree", "Advanced Degree",
                            "Unknown"};
const char* kGenders[] = {"M", "F"};
const char* kCredit[] = {"Low Risk", "Good", "High Risk", "Unknown"};
const char* kStates[] = {"TN", "GA", "SC", "NC", "VA", "AL", "KY", "FL"};
const char* kCounties[] = {"Williamson County", "Walker County",
                           "Ziebach County", "Daviess County",
                           "Barrow County", "Franklin Parish",
                           "Luce County", "Richland County"};
const char* kCities[] = {"Midway", "Fairview", "Oakland", "Riverside",
                         "Five Points", "Oak Grove", "Pleasant Hill",
                         "Centerville"};
const char* kDayNames[] = {"Sunday", "Monday", "Tuesday", "Wednesday",
                           "Thursday", "Friday", "Saturday"};

Status Ddl(Database* db, const std::string& sql) { return db->ExecuteSql(sql); }

}  // namespace

Status CreateTpcdsSchema(Database* db) {
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE date_dim (d_date_sk INT NOT NULL PRIMARY KEY, "
      "d_date DATE NOT NULL, d_year INT NOT NULL, d_moy INT NOT NULL, "
      "d_dom INT NOT NULL, d_qoy INT NOT NULL, d_week_seq INT NOT NULL, "
      "d_day_name VARCHAR(9) NOT NULL)"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX d_year_idx ON date_dim (d_year)"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX d_week_idx ON date_dim (d_week_seq)"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE item (i_item_sk INT NOT NULL PRIMARY KEY, "
      "i_item_id CHAR(16) NOT NULL, i_item_desc VARCHAR(200), "
      "i_brand_id INT, i_brand CHAR(50), i_class CHAR(50), "
      "i_category CHAR(50), i_manufact_id INT, i_manufact CHAR(50), "
      "i_color CHAR(20), i_current_price DECIMAL(7,2), "
      "i_wholesale_cost DECIMAL(7,2))"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE customer (c_customer_sk INT NOT NULL PRIMARY KEY, "
      "c_customer_id CHAR(16) NOT NULL, c_current_addr_sk INT, "
      "c_current_cdemo_sk INT, c_current_hdemo_sk INT, "
      "c_first_name CHAR(20), c_last_name CHAR(30), "
      "c_preferred_cust_flag CHAR(1))"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE customer_address (ca_address_sk INT NOT NULL PRIMARY "
      "KEY, ca_city VARCHAR(60), ca_county VARCHAR(30), ca_state CHAR(2), "
      "ca_zip CHAR(10), ca_country VARCHAR(20))"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE customer_demographics (cd_demo_sk INT NOT NULL PRIMARY "
      "KEY, cd_gender CHAR(1), cd_marital_status CHAR(1), "
      "cd_education_status CHAR(20), cd_purchase_estimate INT, "
      "cd_credit_rating CHAR(10), cd_dep_count INT)"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE household_demographics (hd_demo_sk INT NOT NULL "
      "PRIMARY KEY, hd_income_band_sk INT, hd_buy_potential CHAR(15), "
      "hd_dep_count INT, hd_vehicle_count INT)"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE income_band (ib_income_band_sk INT NOT NULL PRIMARY "
      "KEY, ib_lower_bound INT, ib_upper_bound INT)"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE store (s_store_sk INT NOT NULL PRIMARY KEY, "
      "s_store_id CHAR(16) NOT NULL, s_store_name VARCHAR(50), "
      "s_number_employees INT, s_city VARCHAR(60), s_county VARCHAR(30), "
      "s_state CHAR(2))"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE warehouse (w_warehouse_sk INT NOT NULL PRIMARY KEY, "
      "w_warehouse_name VARCHAR(20), w_warehouse_sq_ft INT, "
      "w_city VARCHAR(60), w_state CHAR(2))"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE promotion (p_promo_sk INT NOT NULL PRIMARY KEY, "
      "p_promo_id CHAR(16) NOT NULL, p_channel_dmail CHAR(1), "
      "p_channel_email CHAR(1), p_channel_tv CHAR(1))"));

  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE store_sales (ss_sold_date_sk INT, ss_item_sk INT NOT "
      "NULL, ss_customer_sk INT, ss_cdemo_sk INT, ss_hdemo_sk INT, "
      "ss_addr_sk INT, ss_store_sk INT, ss_promo_sk INT, "
      "ss_ticket_number INT NOT NULL, ss_quantity INT, "
      "ss_wholesale_cost DECIMAL(7,2), ss_list_price DECIMAL(7,2), "
      "ss_sales_price DECIMAL(7,2), ss_ext_sales_price DECIMAL(7,2), "
      "ss_net_paid DECIMAL(7,2), ss_net_profit DECIMAL(7,2))"));
  for (const char* idx :
       {"CREATE INDEX ss_item_idx ON store_sales (ss_item_sk)",
        "CREATE INDEX ss_date_idx ON store_sales (ss_sold_date_sk)",
        "CREATE INDEX ss_cust_idx ON store_sales (ss_customer_sk)",
        "CREATE INDEX ss_ticket_idx ON store_sales (ss_ticket_number)"}) {
    TAURUS_RETURN_IF_ERROR(Ddl(db, idx));
  }
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE store_returns (sr_returned_date_sk INT, "
      "sr_item_sk INT NOT NULL, sr_customer_sk INT, sr_ticket_number INT "
      "NOT NULL, sr_return_quantity INT, sr_return_amt DECIMAL(7,2), "
      "sr_store_sk INT)"));
  for (const char* idx :
       {"CREATE INDEX sr_item_idx ON store_returns (sr_item_sk)",
        "CREATE INDEX sr_ticket_idx ON store_returns (sr_ticket_number)",
        "CREATE INDEX sr_cust_idx ON store_returns (sr_customer_sk)"}) {
    TAURUS_RETURN_IF_ERROR(Ddl(db, idx));
  }
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE catalog_sales (cs_sold_date_sk INT, cs_ship_date_sk "
      "INT, cs_bill_customer_sk INT, cs_bill_cdemo_sk INT, "
      "cs_bill_hdemo_sk INT, cs_bill_addr_sk INT, cs_item_sk INT NOT NULL, "
      "cs_promo_sk INT, cs_order_number INT NOT NULL, cs_warehouse_sk INT, "
      "cs_quantity INT, cs_wholesale_cost DECIMAL(7,2), "
      "cs_list_price DECIMAL(7,2), cs_sales_price DECIMAL(7,2), "
      "cs_ext_sales_price DECIMAL(7,2), cs_ext_discount_amt DECIMAL(7,2), "
      "cs_net_profit DECIMAL(7,2))"));
  for (const char* idx :
       {"CREATE INDEX cs_item_idx ON catalog_sales (cs_item_sk)",
        "CREATE INDEX cs_date_idx ON catalog_sales (cs_sold_date_sk)",
        "CREATE INDEX cs_cust_idx ON catalog_sales (cs_bill_customer_sk)",
        "CREATE INDEX cs_order_idx ON catalog_sales (cs_order_number)"}) {
    TAURUS_RETURN_IF_ERROR(Ddl(db, idx));
  }
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE catalog_returns (cr_returned_date_sk INT, "
      "cr_item_sk INT NOT NULL, cr_order_number INT NOT NULL, "
      "cr_return_quantity INT, cr_return_amount DECIMAL(7,2), "
      "cr_returning_customer_sk INT)"));
  for (const char* idx :
       {"CREATE INDEX cr_item_idx ON catalog_returns (cr_item_sk)",
        "CREATE INDEX cr_order_idx ON catalog_returns (cr_order_number)",
        "CREATE INDEX cr_cust_idx ON catalog_returns "
        "(cr_returning_customer_sk)"}) {
    TAURUS_RETURN_IF_ERROR(Ddl(db, idx));
  }
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE web_sales (ws_sold_date_sk INT, ws_ship_date_sk INT, "
      "ws_item_sk INT NOT NULL, ws_bill_customer_sk INT, ws_bill_addr_sk "
      "INT, ws_promo_sk INT, ws_order_number INT NOT NULL, "
      "ws_warehouse_sk INT, ws_quantity INT, ws_sales_price DECIMAL(7,2), "
      "ws_ext_sales_price DECIMAL(7,2), ws_ext_discount_amt DECIMAL(7,2), "
      "ws_net_profit DECIMAL(7,2))"));
  for (const char* idx :
       {"CREATE INDEX ws_item_idx ON web_sales (ws_item_sk)",
        "CREATE INDEX ws_date_idx ON web_sales (ws_sold_date_sk)",
        "CREATE INDEX ws_cust_idx ON web_sales (ws_bill_customer_sk)",
        "CREATE INDEX ws_order_idx ON web_sales (ws_order_number)"}) {
    TAURUS_RETURN_IF_ERROR(Ddl(db, idx));
  }
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE web_returns (wr_returned_date_sk INT, wr_item_sk INT "
      "NOT NULL, wr_order_number INT NOT NULL, wr_return_quantity INT, "
      "wr_return_amt DECIMAL(7,2), wr_returning_customer_sk INT)"));
  for (const char* idx :
       {"CREATE INDEX wr_item_idx ON web_returns (wr_item_sk)",
        "CREATE INDEX wr_order_idx ON web_returns (wr_order_number)"}) {
    TAURUS_RETURN_IF_ERROR(Ddl(db, idx));
  }
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE inventory (inv_date_sk INT NOT NULL, inv_item_sk INT "
      "NOT NULL, inv_warehouse_sk INT NOT NULL, inv_quantity_on_hand INT)"));
  for (const char* idx :
       {"CREATE INDEX inv_item_idx ON inventory (inv_item_sk)",
        "CREATE INDEX inv_date_idx ON inventory (inv_date_sk)"}) {
    TAURUS_RETURN_IF_ERROR(Ddl(db, idx));
  }
  return Status::OK();
}

Status LoadTpcds(Database* db, double scale, uint64_t seed) {
  Rng rng(seed);
  const int64_t num_items = std::max<int64_t>(24, int64_t(18000 * scale));
  const int64_t num_customers =
      std::max<int64_t>(40, int64_t(100000 * scale));
  const int64_t num_addresses = std::max<int64_t>(20, num_customers / 2);
  const int64_t num_cdemo = 400;
  const int64_t num_hdemo = 144;
  const int64_t num_stores = 12;
  const int64_t num_warehouses = 5;
  const int64_t num_promos = std::max<int64_t>(12, int64_t(300 * scale));
  const int64_t num_ss = std::max<int64_t>(200, int64_t(2880000 * scale));
  const int64_t num_cs = num_ss / 2;
  const int64_t num_ws = num_ss / 4;

  const int64_t date_base = CivilToDays(1998, 1, 1);
  const int64_t date_end = CivilToDays(2002, 12, 31);
  const int64_t num_dates = date_end - date_base + 1;

  auto dec = [](double v) { return Value::Double(v, TypeId::kNewDecimal); };

  // date_dim: d_date_sk counts days from the base.
  {
    std::vector<Row> rows;
    for (int64_t d = 0; d < num_dates; ++d) {
      int64_t days = date_base + d;
      int y, m, dom;
      DaysToCivil(days, &y, &m, &dom);
      rows.push_back({Value::Int(d), Value::Date(days), Value::Int(y),
                      Value::Int(m), Value::Int(dom),
                      Value::Int((m - 1) / 3 + 1), Value::Int(d / 7),
                      Value::Str(kDayNames[(days + 4) % 7])});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("date_dim", std::move(rows)));
  }
  // item: i_manufact has ~1/28 as many distinct values as there are items
  // (the Q41 analysis: 28000 items, 999 manufacturers).
  {
    std::vector<Row> rows;
    int64_t num_manufact = std::max<int64_t>(4, num_items / 28);
    for (int64_t i = 1; i <= num_items; ++i) {
      int64_t man = 1 + rng.Uniform(0, num_manufact - 1);
      int brand1 = static_cast<int>(rng.Uniform(1, 10));
      int brand2 = static_cast<int>(rng.Uniform(1, 10));
      rows.push_back(
          {Value::Int(i), Value::Str("AAAAAAAA" + std::to_string(i)),
           Value::Str(rng.NextString(20, 60)),
           Value::Int(brand1 * 1000 + brand2),
           Value::Str("brand#" + std::to_string(brand1) +
                      std::to_string(brand2)),
           Value::Str(kClasses[rng.Uniform(0, 11)]),
           Value::Str(kCategories[rng.Uniform(0, 9)]), Value::Int(man),
           Value::Str("manufact#" + std::to_string(man)),
           Value::Str(kColors[rng.Uniform(0, 11)]),
           dec(0.99 + rng.NextDouble() * 99.0),
           dec(0.5 + rng.NextDouble() * 60.0)});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("item", std::move(rows)));
  }
  // customer_address / demographics / households / income bands.
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= num_addresses; ++i) {
      rows.push_back({Value::Int(i), Value::Str(kCities[rng.Uniform(0, 7)]),
                      Value::Str(kCounties[rng.Uniform(0, 7)]),
                      Value::Str(kStates[rng.Uniform(0, 7)]),
                      Value::Str(std::to_string(10000 + i % 90000)),
                      Value::Str("United States")});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("customer_address", std::move(rows)));
  }
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= num_cdemo; ++i) {
      rows.push_back({Value::Int(i), Value::Str(kGenders[i % 2]),
                      Value::Str(kMarital[i % 5]),
                      Value::Str(kEducation[i % 7]),
                      Value::Int(500 * (1 + i % 20)),
                      Value::Str(kCredit[i % 4]),
                      Value::Int(i % 7)});
    }
    TAURUS_RETURN_IF_ERROR(
        db->BulkLoad("customer_demographics", std::move(rows)));
  }
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= num_hdemo; ++i) {
      rows.push_back({Value::Int(i), Value::Int(1 + i % 20),
                      Value::Str(kBuyPotentials[i % 6]),
                      Value::Int(i % 10), Value::Int(i % 5)});
    }
    TAURUS_RETURN_IF_ERROR(
        db->BulkLoad("household_demographics", std::move(rows)));
  }
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= 20; ++i) {
      rows.push_back({Value::Int(i), Value::Int((i - 1) * 10000),
                      Value::Int(i * 10000)});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("income_band", std::move(rows)));
  }
  // customer / store / warehouse / promotion.
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= num_customers; ++i) {
      rows.push_back({Value::Int(i),
                      Value::Str("CUST" + std::to_string(100000 + i)),
                      Value::Int(1 + i % num_addresses),
                      Value::Int(1 + rng.Uniform(0, num_cdemo - 1)),
                      Value::Int(1 + rng.Uniform(0, num_hdemo - 1)),
                      Value::Str(rng.NextString(4, 10)),
                      Value::Str(rng.NextString(4, 12)),
                      Value::Str(rng.Uniform(0, 1) != 0 ? "Y" : "N")});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("customer", std::move(rows)));
  }
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= num_stores; ++i) {
      rows.push_back({Value::Int(i),
                      Value::Str("STORE" + std::to_string(i)),
                      Value::Str("ese" + std::to_string(i)),
                      Value::Int(200 + 10 * i),
                      Value::Str(kCities[i % 8]),
                      Value::Str(kCounties[i % 8]),
                      Value::Str(kStates[i % 8])});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("store", std::move(rows)));
  }
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= num_warehouses; ++i) {
      rows.push_back({Value::Int(i),
                      Value::Str("Warehouse" + std::to_string(i)),
                      Value::Int(50000 + 1000 * i),
                      Value::Str(kCities[i % 8]),
                      Value::Str(kStates[i % 8])});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("warehouse", std::move(rows)));
  }
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= num_promos; ++i) {
      rows.push_back({Value::Int(i),
                      Value::Str("PROMO" + std::to_string(i)),
                      Value::Str(rng.Uniform(0, 1) != 0 ? "Y" : "N"),
                      Value::Str(rng.Uniform(0, 1) != 0 ? "Y" : "N"),
                      Value::Str(rng.Uniform(0, 1) != 0 ? "Y" : "N")});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("promotion", std::move(rows)));
  }

  // store_sales (+ ~10% returns).
  {
    std::vector<Row> sales;
    std::vector<Row> returns;
    for (int64_t t = 1; t <= num_ss; ++t) {
      int64_t item = 1 + rng.Uniform(0, num_items - 1);
      int64_t date = rng.Uniform(0, num_dates - 1);
      int64_t cust = 1 + rng.Uniform(0, num_customers - 1);
      int qty = static_cast<int>(rng.Uniform(1, 100));
      double wholesale = 1.0 + rng.NextDouble() * 80.0;
      double list = wholesale * (1.2 + rng.NextDouble());
      double price = list * (0.3 + 0.7 * rng.NextDouble());
      sales.push_back(
          {Value::Int(date), Value::Int(item), Value::Int(cust),
           Value::Int(1 + rng.Uniform(0, num_cdemo - 1)),
           Value::Int(1 + rng.Uniform(0, num_hdemo - 1)),
           Value::Int(1 + cust % num_addresses),
           Value::Int(1 + rng.Uniform(0, num_stores - 1)),
           rng.Uniform(0, 3) == 0
               ? Value::Int(1 + rng.Uniform(0, num_promos - 1))
               : Value::Null(),
           Value::Int(t), Value::Int(qty), dec(wholesale), dec(list),
           dec(price), dec(price * qty), dec(price * qty),
           dec((price - wholesale) * qty)});
      if (rng.Uniform(0, 9) == 0) {
        int rqty = 1 + static_cast<int>(rng.Uniform(0, qty - 1));
        returns.push_back({Value::Int(std::min(date + rng.Uniform(1, 30),
                                               num_dates - 1)),
                           Value::Int(item), Value::Int(cust), Value::Int(t),
                           Value::Int(rqty), dec(price * rqty),
                           sales.back()[6]});
      }
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("store_sales", std::move(sales)));
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("store_returns", std::move(returns)));
  }
  // catalog_sales (+ returns).
  {
    std::vector<Row> sales;
    std::vector<Row> returns;
    for (int64_t o = 1; o <= num_cs; ++o) {
      int64_t item = 1 + rng.Uniform(0, num_items - 1);
      int64_t date = rng.Uniform(0, num_dates - 8);
      int64_t cust = 1 + rng.Uniform(0, num_customers - 1);
      int qty = static_cast<int>(rng.Uniform(1, 100));
      double wholesale = 1.0 + rng.NextDouble() * 80.0;
      double list = wholesale * (1.2 + rng.NextDouble());
      double price = list * (0.3 + 0.7 * rng.NextDouble());
      sales.push_back(
          {Value::Int(date), Value::Int(date + rng.Uniform(2, 7)),
           Value::Int(cust),
           Value::Int(1 + rng.Uniform(0, num_cdemo - 1)),
           Value::Int(1 + rng.Uniform(0, num_hdemo - 1)),
           Value::Int(1 + cust % num_addresses), Value::Int(item),
           rng.Uniform(0, 3) == 0
               ? Value::Int(1 + rng.Uniform(0, num_promos - 1))
               : Value::Null(),
           Value::Int(o), Value::Int(1 + rng.Uniform(0, num_warehouses - 1)),
           Value::Int(qty), dec(wholesale), dec(list), dec(price),
           dec(price * qty), dec((list - price) * qty),
           dec((price - wholesale) * qty)});
      if (rng.Uniform(0, 9) == 0) {
        int rqty = 1 + static_cast<int>(rng.Uniform(0, qty - 1));
        returns.push_back({Value::Int(std::min(date + rng.Uniform(3, 40),
                                               num_dates - 1)),
                           Value::Int(item), Value::Int(o),
                           Value::Int(rqty), dec(price * rqty),
                           Value::Int(cust)});
      }
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("catalog_sales", std::move(sales)));
    TAURUS_RETURN_IF_ERROR(
        db->BulkLoad("catalog_returns", std::move(returns)));
  }
  // web_sales (+ returns).
  {
    std::vector<Row> sales;
    std::vector<Row> returns;
    for (int64_t o = 1; o <= num_ws; ++o) {
      int64_t item = 1 + rng.Uniform(0, num_items - 1);
      int64_t date = rng.Uniform(0, num_dates - 8);
      int64_t cust = 1 + rng.Uniform(0, num_customers - 1);
      int qty = static_cast<int>(rng.Uniform(1, 100));
      double price = 1.0 + rng.NextDouble() * 140.0;
      sales.push_back(
          {Value::Int(date), Value::Int(date + rng.Uniform(1, 7)),
           Value::Int(item), Value::Int(cust),
           Value::Int(1 + cust % num_addresses),
           rng.Uniform(0, 3) == 0
               ? Value::Int(1 + rng.Uniform(0, num_promos - 1))
               : Value::Null(),
           Value::Int(o), Value::Int(1 + rng.Uniform(0, num_warehouses - 1)),
           Value::Int(qty), dec(price), dec(price * qty),
           dec(price * qty * 0.1 * rng.NextDouble()),
           dec(price * qty * (rng.NextDouble() - 0.3))});
      if (rng.Uniform(0, 9) == 0) {
        int rqty = 1 + static_cast<int>(rng.Uniform(0, qty - 1));
        returns.push_back({Value::Int(std::min(date + rng.Uniform(3, 40),
                                               num_dates - 1)),
                           Value::Int(item), Value::Int(o),
                           Value::Int(rqty), dec(price * rqty),
                           Value::Int(cust)});
      }
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("web_sales", std::move(sales)));
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("web_returns", std::move(returns)));
  }
  // inventory: bi-weekly snapshots per (item, warehouse).
  {
    std::vector<Row> rows;
    for (int64_t d = 0; d < num_dates; d += 14) {
      for (int64_t i = 1; i <= num_items; ++i) {
        for (int64_t w = 1; w <= num_warehouses; ++w) {
          rows.push_back({Value::Int(d), Value::Int(i), Value::Int(w),
                          Value::Int(rng.Uniform(0, 1000))});
        }
      }
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("inventory", std::move(rows)));
  }
  return db->AnalyzeAll();
}

}  // namespace taurus
