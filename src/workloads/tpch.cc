#include "workloads/tpch.h"

#include <algorithm>

#include "common/rng.h"
#include "types/datetime.h"

namespace taurus {

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

struct NationSpec {
  const char* name;
  int region;
};
const NationSpec kNations[] = {
    {"ALGERIA", 0},    {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},     {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},     {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},  {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},      {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},    {"MOZAMBIQUE", 0},{"PERU", 1},
    {"CHINA", 2},      {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},    {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK",
                            "MAIL", "FOB"};
const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                            "TAKE BACK RETURN"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                         "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                              "CAN", "DRUM"};
const char* kColors[] = {"almond",  "antique", "aquamarine", "azure",
                         "beige",   "bisque",  "black",      "blanched",
                         "blue",    "blush",   "brown",      "burlywood",
                         "chartreuse", "chocolate", "coral",  "cornsilk",
                         "cream",   "cyan",    "dark",       "deep",
                         "dim",     "dodger",  "drab",       "firebrick",
                         "floral",  "forest",  "frosted",    "gainsboro",
                         "ghost",   "goldenrod"};

Status Ddl(Database* db, const std::string& sql) {
  return db->ExecuteSql(sql);
}

}  // namespace

Status CreateTpchSchema(Database* db) {
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE region (r_regionkey INT NOT NULL PRIMARY KEY, "
      "r_name CHAR(25) NOT NULL, r_comment VARCHAR(152))"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE nation (n_nationkey INT NOT NULL PRIMARY KEY, "
      "n_name CHAR(25) NOT NULL, n_regionkey INT NOT NULL, "
      "n_comment VARCHAR(152))"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX nation_fk1 ON nation (n_regionkey)"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE supplier (s_suppkey INT NOT NULL PRIMARY KEY, "
      "s_name CHAR(25) NOT NULL, s_address VARCHAR(40) NOT NULL, "
      "s_nationkey INT NOT NULL, s_phone CHAR(15) NOT NULL, "
      "s_acctbal DECIMAL(15,2) NOT NULL, s_comment VARCHAR(101) NOT NULL)"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX supplier_fk1 ON supplier (s_nationkey)"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE customer (c_custkey INT NOT NULL PRIMARY KEY, "
      "c_name VARCHAR(25) NOT NULL, c_address VARCHAR(40) NOT NULL, "
      "c_nationkey INT NOT NULL, c_phone CHAR(15) NOT NULL, "
      "c_acctbal DECIMAL(15,2) NOT NULL, c_mktsegment CHAR(10) NOT NULL, "
      "c_comment VARCHAR(117) NOT NULL)"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX customer_fk1 ON customer (c_nationkey)"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE part (p_partkey INT NOT NULL PRIMARY KEY, "
      "p_name VARCHAR(55) NOT NULL, p_mfgr CHAR(25) NOT NULL, "
      "p_brand CHAR(10) NOT NULL, p_type VARCHAR(25) NOT NULL, "
      "p_size INT NOT NULL, p_container CHAR(10) NOT NULL, "
      "p_retailprice DECIMAL(15,2) NOT NULL, p_comment VARCHAR(23) NOT NULL)"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE partsupp (ps_partkey INT NOT NULL, "
      "ps_suppkey INT NOT NULL, ps_availqty INT NOT NULL, "
      "ps_supplycost DECIMAL(15,2) NOT NULL, ps_comment VARCHAR(199) NOT "
      "NULL, PRIMARY KEY (ps_partkey, ps_suppkey))"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX partsupp_fk2 ON partsupp (ps_suppkey)"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE orders (o_orderkey INT NOT NULL PRIMARY KEY, "
      "o_custkey INT NOT NULL, o_orderstatus CHAR(1) NOT NULL, "
      "o_totalprice DECIMAL(15,2) NOT NULL, o_orderdate DATE NOT NULL, "
      "o_orderpriority CHAR(15) NOT NULL, o_clerk CHAR(15) NOT NULL, "
      "o_shippriority INT NOT NULL, o_comment VARCHAR(79) NOT NULL)"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX orders_fk1 ON orders (o_custkey)"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX orders_d_idx ON orders (o_orderdate)"));
  TAURUS_RETURN_IF_ERROR(Ddl(db,
      "CREATE TABLE lineitem (l_orderkey INT NOT NULL, "
      "l_partkey INT NOT NULL, l_suppkey INT NOT NULL, "
      "l_linenumber INT NOT NULL, l_quantity DECIMAL(15,2) NOT NULL, "
      "l_extendedprice DECIMAL(15,2) NOT NULL, "
      "l_discount DECIMAL(15,2) NOT NULL, l_tax DECIMAL(15,2) NOT NULL, "
      "l_returnflag CHAR(1) NOT NULL, l_linestatus CHAR(1) NOT NULL, "
      "l_shipdate DATE NOT NULL, l_commitdate DATE NOT NULL, "
      "l_receiptdate DATE NOT NULL, l_shipinstruct CHAR(25) NOT NULL, "
      "l_shipmode CHAR(10) NOT NULL, l_comment VARCHAR(44) NOT NULL, "
      "PRIMARY KEY (l_orderkey, l_linenumber))"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX lineitem_fk1 ON lineitem (l_orderkey)"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX lineitem_fk2 ON lineitem (l_partkey)"));
  TAURUS_RETURN_IF_ERROR(
      Ddl(db, "CREATE INDEX lineitem_fk3 ON lineitem (l_suppkey)"));
  return Status::OK();
}

Status LoadTpch(Database* db, double sf, uint64_t seed) {
  Rng rng(seed);
  const int64_t num_suppliers = std::max<int64_t>(10, int64_t(10000 * sf));
  const int64_t num_parts = std::max<int64_t>(20, int64_t(200000 * sf));
  const int64_t num_customers = std::max<int64_t>(15, int64_t(150000 * sf));
  const int64_t num_orders = std::max<int64_t>(30, int64_t(1500000 * sf));
  const int64_t date_lo = CivilToDays(1992, 1, 1);
  const int64_t date_hi = CivilToDays(1998, 8, 2);

  auto comment = [&rng](int min_len, int max_len) {
    return Value::Str(rng.NextString(min_len, max_len));
  };
  auto decimal = [](double v) { return Value::Double(v, TypeId::kNewDecimal); };

  // region
  {
    std::vector<Row> rows;
    for (int i = 0; i < 5; ++i) {
      rows.push_back({Value::Int(i), Value::Str(kRegions[i]),
                      comment(10, 30)});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("region", std::move(rows)));
  }
  // nation
  {
    std::vector<Row> rows;
    for (int i = 0; i < 25; ++i) {
      rows.push_back({Value::Int(i), Value::Str(kNations[i].name),
                      Value::Int(kNations[i].region), comment(10, 30)});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("nation", std::move(rows)));
  }
  // supplier — ~1% of comments carry the Q16 "Customer ... Complaints" tag.
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= num_suppliers; ++i) {
      std::string cmt = rng.NextString(20, 60);
      if (rng.Uniform(0, 99) == 0) {
        cmt = rng.NextString(3, 10) + "Customer" + rng.NextString(3, 10) +
              "Complaints" + rng.NextString(3, 10);
      }
      rows.push_back({Value::Int(i),
                      Value::Str("Supplier#" + std::to_string(i)),
                      comment(10, 30), Value::Int(rng.Uniform(0, 24)),
                      Value::Str(std::to_string(10 + i % 25) + "-" +
                                 std::to_string(100 + i % 900)),
                      decimal(-999.99 + rng.NextDouble() * 10999.98),
                      Value::Str(cmt)});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("supplier", std::move(rows)));
  }
  // part
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= num_parts; ++i) {
      std::string name = std::string(kColors[rng.Uniform(0, 29)]) + " " +
                         kColors[rng.Uniform(0, 29)];
      int brand_m = static_cast<int>(rng.Uniform(1, 5));
      int brand_n = static_cast<int>(rng.Uniform(1, 5));
      std::string type = std::string(kTypes1[rng.Uniform(0, 5)]) + " " +
                         kTypes2[rng.Uniform(0, 4)] + " " +
                         kTypes3[rng.Uniform(0, 4)];
      std::string container = std::string(kContainers1[rng.Uniform(0, 4)]) +
                              " " + kContainers2[rng.Uniform(0, 7)];
      rows.push_back(
          {Value::Int(i), Value::Str(name),
           Value::Str("Manufacturer#" + std::to_string(brand_m)),
           Value::Str("Brand#" + std::to_string(brand_m) +
                      std::to_string(brand_n)),
           Value::Str(type), Value::Int(rng.Uniform(1, 50)),
           Value::Str(container),
           decimal(900.0 + (static_cast<double>(i % 1000)) + 100.0 *
                               rng.NextDouble()),
           comment(5, 20)});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("part", std::move(rows)));
  }
  // partsupp: 4 suppliers per part.
  {
    std::vector<Row> rows;
    for (int64_t p = 1; p <= num_parts; ++p) {
      for (int s = 0; s < 4; ++s) {
        int64_t suppkey = 1 + (p + s * (num_suppliers / 4 + 1)) %
                                  num_suppliers;
        rows.push_back({Value::Int(p), Value::Int(suppkey),
                        Value::Int(rng.Uniform(1, 9999)),
                        decimal(1.0 + rng.NextDouble() * 999.0),
                        comment(20, 60)});
      }
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("partsupp", std::move(rows)));
  }
  // customer
  {
    std::vector<Row> rows;
    for (int64_t i = 1; i <= num_customers; ++i) {
      rows.push_back({Value::Int(i),
                      Value::Str("Customer#" + std::to_string(i)),
                      comment(10, 30), Value::Int(rng.Uniform(0, 24)),
                      Value::Str(std::to_string(10 + i % 25) + "-" +
                                 std::to_string(100 + i % 900)),
                      decimal(-999.99 + rng.NextDouble() * 10999.98),
                      Value::Str(kSegments[rng.Uniform(0, 4)]),
                      comment(20, 60)});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("customer", std::move(rows)));
  }
  // orders + lineitem — only ~2/3 of customers have orders (Q22 relies on
  // customers without orders existing).
  {
    std::vector<Row> orders;
    std::vector<Row> items;
    for (int64_t o = 1; o <= num_orders; ++o) {
      int64_t custkey = 1 + rng.Uniform(0, (num_customers * 2) / 3);
      int64_t odate = rng.Uniform(date_lo, date_hi - 151);
      int lines = static_cast<int>(rng.Uniform(1, 7));
      double total = 0.0;
      bool any_open = false;
      for (int l = 1; l <= lines; ++l) {
        int64_t partkey = 1 + rng.Uniform(0, num_parts - 1);
        int64_t suppkey =
            1 + (partkey + rng.Uniform(0, 3) * (num_suppliers / 4 + 1)) %
                    num_suppliers;
        double qty = static_cast<double>(rng.Uniform(1, 50));
        double price = qty * (900.0 + static_cast<double>(partkey % 1000));
        double discount = 0.01 * static_cast<double>(rng.Uniform(0, 10));
        double tax = 0.01 * static_cast<double>(rng.Uniform(0, 8));
        int64_t ship = odate + rng.Uniform(1, 121);
        int64_t commit = odate + rng.Uniform(30, 90);
        int64_t receipt = ship + rng.Uniform(1, 30);
        bool open = receipt > CivilToDays(1995, 6, 17);
        any_open |= open;
        const char* flag =
            open ? "N" : (rng.Uniform(0, 1) != 0 ? "R" : "A");
        items.push_back({Value::Int(o), Value::Int(partkey),
                         Value::Int(suppkey), Value::Int(l),
                         decimal(qty), decimal(price), decimal(discount),
                         decimal(tax), Value::Str(flag),
                         Value::Str(open ? "O" : "F"), Value::Date(ship),
                         Value::Date(commit), Value::Date(receipt),
                         Value::Str(kInstructs[rng.Uniform(0, 3)]),
                         Value::Str(kShipModes[rng.Uniform(0, 6)]),
                         comment(10, 40)});
        total += price * (1 + tax) * (1 - discount);
      }
      std::string ocmt = rng.NextString(15, 40);
      if (rng.Uniform(0, 99) == 0) {
        ocmt = rng.NextString(3, 8) + "special" + rng.NextString(3, 8) +
               "requests" + rng.NextString(3, 8);
      }
      orders.push_back(
          {Value::Int(o), Value::Int(custkey),
           Value::Str(any_open ? "O" : "F"), decimal(total),
           Value::Date(odate), Value::Str(kPriorities[rng.Uniform(0, 4)]),
           Value::Str("Clerk#" + std::to_string(rng.Uniform(1, 1000))),
           Value::Int(0), Value::Str(ocmt)});
    }
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("orders", std::move(orders)));
    TAURUS_RETURN_IF_ERROR(db->BulkLoad("lineitem", std::move(items)));
  }
  return db->AnalyzeAll();
}

}  // namespace taurus
