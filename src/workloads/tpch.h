#ifndef TAURUS_WORKLOADS_TPCH_H_
#define TAURUS_WORKLOADS_TPCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/database.h"

namespace taurus {

/// TPC-H-style workload: the 8-table schema (standard column sets, primary
/// keys and foreign-key indexes), a deterministic dbgen-flavored data
/// generator, and the 22 queries expressed in this engine's SQL dialect
/// (Q15's revenue view becomes a CTE; everything else is structurally the
/// official query).
///
/// The paper ran scale factor 20 on a Taurus cluster; this reproduction
/// defaults to a scale the in-memory engine executes in seconds while
/// preserving the row-count *ratios* between tables, which is what drives
/// plan selection.

/// Creates tables and indexes.
Status CreateTpchSchema(Database* db);

/// Generates and loads data for `scale_factor` (1.0 = the official 1 GB
/// row counts), then runs ANALYZE on every table.
Status LoadTpch(Database* db, double scale_factor, uint64_t seed = 20220329);

/// The 22 TPC-H queries (index 0 = Q1 ... index 21 = Q22).
const std::vector<std::string>& TpchQueries();

/// Convenience: schema + load.
inline Status SetupTpch(Database* db, double scale_factor,
                        uint64_t seed = 20220329) {
  TAURUS_RETURN_IF_ERROR(CreateTpchSchema(db));
  return LoadTpch(db, scale_factor, seed);
}

}  // namespace taurus

#endif  // TAURUS_WORKLOADS_TPCH_H_
