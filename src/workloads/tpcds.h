#ifndef TAURUS_WORKLOADS_TPCDS_H_
#define TAURUS_WORKLOADS_TPCDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/database.h"

namespace taurus {

/// TPC-DS-style workload: a 17-table subset of the official schema (the
/// three sales channels with their returns, inventory, and the dimension
/// tables the evaluation's queries touch), a deterministic generator, and
/// a 99-query suite.
///
/// Query provenance: the queries the paper discusses by number (DS 1, 6, 9,
/// 14, 17, 24, 31, 32, 41, 56, 58, 64, 72, 81, 92) are hand-written
/// adaptations of the official queries in this engine's dialect —
/// INTERSECT/EXCEPT forms are pre-rewritten as the paper had to do for
/// MySQL. The remaining slots are filled from structure templates that
/// match the benchmark's query-class mix (star joins over the three
/// channels, demographic snowflakes, EXISTS/NOT IN channel comparisons,
/// CTE self-joins, average-subquery filters, union multi-channel reports),
/// so the 99-point series of Fig. 11/12 has the right diversity.

/// Creates tables and indexes.
Status CreateTpcdsSchema(Database* db);

/// Generates and loads data; `scale` 1.0 targets ~ 3M store_sales rows
/// (use ~0.02 for second-scale runs). ANALYZEs everything.
Status LoadTpcds(Database* db, double scale, uint64_t seed = 19990401);

/// The 99 queries (index 0 = Q1 ... index 98 = Q99).
const std::vector<std::string>& TpcdsQueries();

/// Convenience: schema + load.
inline Status SetupTpcds(Database* db, double scale,
                         uint64_t seed = 19990401) {
  TAURUS_RETURN_IF_ERROR(CreateTpcdsSchema(db));
  return LoadTpcds(db, scale, seed);
}

}  // namespace taurus

#endif  // TAURUS_WORKLOADS_TPCDS_H_
