#ifndef TAURUS_EXEC_EXEC_CONTEXT_H_
#define TAURUS_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "exec/exec_profile.h"
#include "exec/op_actuals.h"
#include "feedback/agms_sketch.h"
#include "exec/physical_plan.h"
#include "storage/storage.h"

namespace taurus {

class ThreadPool;

/// Per-query execution state: the storage handles, the compiled plan (for
/// expression-subquery lookup), result caches and instrumentation counters.
///
/// Under the morsel-driven parallel executor the root context is sharded:
/// each worker gets a private ExecContext whose counters accumulate locally
/// and merge back into the root at pipeline end (MergeShard). The one piece
/// of state that must stay globally exact while workers run is the Orca
/// detour's row budget, so it is enforced through a single atomic counter
/// owned by the root and shared by every shard — a kResourceExhausted kill
/// fires at the same global row count regardless of how rows were split.
///
/// Non-copyable (the shared budget counter is an atomic); the engine creates
/// one root context per execution attempt.
struct ExecContext {
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  const Storage* storage = nullptr;
  CompiledQuery* query = nullptr;

  /// Cache of non-correlated expression-subquery results (keyed by
  /// subplan id).
  std::map<int, std::vector<Row>> subplan_cache;

  /// Cache of non-correlated derived-table materializations (keyed by the
  /// derived BlockPlan). Without it, a CTE consumed inside a correlated
  /// subquery would re-materialize on every outer row.
  std::map<const BlockPlan*, std::vector<Row>> derived_cache;

  // Instrumentation (consumed by tests and cost-model calibration).
  int64_t rows_scanned = 0;    ///< rows produced by table/index scans
  int64_t index_lookups = 0;   ///< "ref" accesses performed
  int64_t rebinds = 0;         ///< correlated re-materializations

  // Resource budget, armed by the engine for Orca-detour plans only (the
  // MySQL path is never budgeted). 0 = unlimited.
  int64_t max_rows_scanned = 0;
  double exec_deadline_ms = 0.0;          ///< absolute, on clock_ms timeline
  std::function<double()> clock_ms;       ///< set iff exec_deadline_ms > 0

  // --- Morsel-driven parallelism (see DESIGN.md section 8) ---

  /// Worker pool, or null to force every pipeline serial. Worker shards
  /// never carry a pool (no nested parallelism).
  ThreadPool* pool = nullptr;
  /// Keeps the engine's shared pool alive for this execution: with
  /// concurrent sessions, a knob change can retire the engine's pool while
  /// queries armed against it are still running. The control block is
  /// created where ThreadPool is complete (database.cc), so the forward
  /// declaration suffices here.
  std::shared_ptr<ThreadPool> pool_owner;
  /// Resolved degree-of-parallelism knob (>= 1; 1 = serial).
  int parallel_workers = 1;
  /// Rows per morsel carved from the driving table scan.
  int64_t morsel_rows = 2048;
  /// Pipelines whose driving table is smaller than this stay serial, so
  /// short OLTP-style queries never pay pool hand-off overhead.
  int64_t parallel_min_driver_rows = 32768;
  /// True for per-worker shards (suppresses nested parallel attempts).
  bool is_worker_shard = false;

  // Parallel-execution stats, merged into QueryResult by the engine.
  int parallel_pipelines = 0;   ///< pipelines that ran morsel-parallel
  int max_workers_used = 1;     ///< widest DOP any pipeline actually used

  // --- Vectorized batch execution (see DESIGN.md section 13) ---

  /// Run eligible pipelines batch-at-a-time (ExecutorConfig::enable_batch).
  bool use_batch = true;
  /// Target rows per batch (clamped to >= 1 at the operators).
  int64_t batch_size = 1024;

  // Batch-execution stats, merged into QueryResult by the engine.
  int batch_pipelines = 0;   ///< pipelines (or grafted segments) run batched
  int64_t batches = 0;       ///< batches emitted to consumers
  int64_t batch_rows = 0;    ///< selected rows across those batches

  // --- EXPLAIN ANALYZE (see DESIGN.md section 10) ---

  /// When non-null, the executor wraps every iterator to record per-node
  /// actual rows / loops / wall time into this map. Null (the default)
  /// builds the plain iterator chain — the analyze machinery costs nothing
  /// when disabled.
  OpActualsMap* op_actuals = nullptr;
  /// Clock for per-node timings; required when op_actuals is set. Tests
  /// inject a FakeClock here for deterministic timings.
  const Clock* analyze_clock = nullptr;

  // --- Cardinality feedback (see DESIGN.md section 11) ---

  /// When non-null, hash joins opportunistically fold their build (and, in
  /// serial pipelines, probe) key streams into Fast-AGMS sketches here.
  /// Shared by worker shards: sketch updates are atomic, and stream
  /// ownership is resolved under the set's own mutex.
  SketchSet* sketches = nullptr;

  // --- Executor profiling (see DESIGN.md section 15) ---

  /// When non-null (root contexts only; armed by the engine when
  /// ExecutorConfig::enable_profiling is on), every morsel-parallel
  /// pipeline folds its per-worker busy/idle timing and morsel counts in
  /// here. Workers time into private slots; the merge happens on the main
  /// thread after the pool joins, so profiling adds no synchronization.
  ExecProfile* exec_profile = nullptr;
  /// Clock for worker timing; set with exec_profile. Tests inject a
  /// FakeClock for deterministic morsel counts (durations collapse to 0).
  const Clock* profile_clock = nullptr;

  /// Counts one scanned row against the budget. The row cap is charged on
  /// the shared atomic so concurrent shards trip it at one deterministic
  /// global count; the deadline is polled every 256 *locally charged* rows
  /// (a per-context stride — a stride on the global counter would make
  /// sharded workers poll the clock 1/Nth as often each).
  Status ChargeScannedRow() {
    ++rows_scanned;
    if (max_rows_scanned > 0 &&
        budget_rows()->fetch_add(1, std::memory_order_relaxed) + 1 >
            max_rows_scanned) {
      return Status::ResourceExhausted("executor row budget exceeded")
          .SetOrigin("exec.budget", "max_exec_rows");
    }
    if (exec_deadline_ms > 0 && (++deadline_poll_ticker_ & 255) == 0 &&
        clock_ms && clock_ms() > exec_deadline_ms) {
      return Status::ResourceExhausted("executor deadline exceeded")
          .SetOrigin("exec.budget", "exec_deadline_ms");
    }
    return Status::OK();
  }

  /// Bulk form for the batch executor: charges `n` scanned rows in scan
  /// order. Unbudgeted pipelines take a single add (bit-identical counter
  /// state to n ChargeScannedRow calls); budgeted ones charge row by row
  /// so the kill fires at the exact same global count as the
  /// row-at-a-time path.
  Status ChargeScannedRows(int64_t n) {
    if (max_rows_scanned <= 0 && exec_deadline_ms <= 0) {
      rows_scanned += n;
      return Status::OK();
    }
    for (int64_t i = 0; i < n; ++i) {
      Status st = ChargeScannedRow();
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  /// Initializes `shard` as a worker-private view of this root context:
  /// same storage/plan/budget (shared atomic), fresh counters and caches.
  void InitShard(ExecContext* shard) const {
    shard->storage = storage;
    shard->query = query;
    shard->max_rows_scanned = max_rows_scanned;
    shard->exec_deadline_ms = exec_deadline_ms;
    shard->clock_ms = clock_ms;
    shard->shared_budget_rows_ = budget_rows();
    shard->morsel_rows = morsel_rows;
    shard->is_worker_shard = true;
    shard->sketches = sketches;
    shard->use_batch = use_batch;
    shard->batch_size = batch_size;
    if (op_actuals != nullptr) {
      // Each shard records into a private map (no locking on the hot path);
      // MergeShard sums them back into the root's map.
      shard->owned_actuals_ = std::make_unique<OpActualsMap>();
      shard->op_actuals = shard->owned_actuals_.get();
      shard->analyze_clock = analyze_clock;
    }
  }

  /// Folds a finished worker shard's counters back into this root context.
  void MergeShard(const ExecContext& shard) {
    rows_scanned += shard.rows_scanned;
    index_lookups += shard.index_lookups;
    rebinds += shard.rebinds;
    batches += shard.batches;
    batch_rows += shard.batch_rows;
    if (op_actuals != nullptr && shard.op_actuals != nullptr) {
      op_actuals->Merge(*shard.op_actuals);
    }
  }

 private:
  /// The budget counter this context charges: the root's own atomic, or —
  /// for worker shards — a pointer to the root's.
  std::atomic<int64_t>* budget_rows() const {
    return shared_budget_rows_ != nullptr ? shared_budget_rows_
                                          : &owned_budget_rows_;
  }

  mutable std::atomic<int64_t> owned_budget_rows_{0};
  std::atomic<int64_t>* shared_budget_rows_ = nullptr;
  uint32_t deadline_poll_ticker_ = 0;
  std::unique_ptr<OpActualsMap> owned_actuals_;  ///< worker shards only
};

}  // namespace taurus

#endif  // TAURUS_EXEC_EXEC_CONTEXT_H_
