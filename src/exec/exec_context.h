#ifndef TAURUS_EXEC_EXEC_CONTEXT_H_
#define TAURUS_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "exec/physical_plan.h"
#include "storage/storage.h"

namespace taurus {

/// Per-query execution state: the storage handles, the compiled plan (for
/// expression-subquery lookup), result caches and instrumentation counters.
struct ExecContext {
  const Storage* storage = nullptr;
  CompiledQuery* query = nullptr;

  /// Cache of non-correlated expression-subquery results (keyed by
  /// subplan id).
  std::map<int, std::vector<Row>> subplan_cache;

  /// Cache of non-correlated derived-table materializations (keyed by the
  /// derived BlockPlan). Without it, a CTE consumed inside a correlated
  /// subquery would re-materialize on every outer row.
  std::map<const BlockPlan*, std::vector<Row>> derived_cache;

  // Instrumentation (consumed by tests and cost-model calibration).
  int64_t rows_scanned = 0;    ///< rows produced by table/index scans
  int64_t index_lookups = 0;   ///< "ref" accesses performed
  int64_t rebinds = 0;         ///< correlated re-materializations
};

}  // namespace taurus

#endif  // TAURUS_EXEC_EXEC_CONTEXT_H_
