#ifndef TAURUS_EXEC_EXEC_CONTEXT_H_
#define TAURUS_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/physical_plan.h"
#include "storage/storage.h"

namespace taurus {

/// Per-query execution state: the storage handles, the compiled plan (for
/// expression-subquery lookup), result caches and instrumentation counters.
struct ExecContext {
  const Storage* storage = nullptr;
  CompiledQuery* query = nullptr;

  /// Cache of non-correlated expression-subquery results (keyed by
  /// subplan id).
  std::map<int, std::vector<Row>> subplan_cache;

  /// Cache of non-correlated derived-table materializations (keyed by the
  /// derived BlockPlan). Without it, a CTE consumed inside a correlated
  /// subquery would re-materialize on every outer row.
  std::map<const BlockPlan*, std::vector<Row>> derived_cache;

  // Instrumentation (consumed by tests and cost-model calibration).
  int64_t rows_scanned = 0;    ///< rows produced by table/index scans
  int64_t index_lookups = 0;   ///< "ref" accesses performed
  int64_t rebinds = 0;         ///< correlated re-materializations

  // Resource budget, armed by the engine for Orca-detour plans only (the
  // MySQL path is never budgeted). 0 = unlimited.
  int64_t max_rows_scanned = 0;
  double exec_deadline_ms = 0.0;          ///< absolute, on clock_ms timeline
  std::function<double()> clock_ms;       ///< set iff exec_deadline_ms > 0

  /// Counts one scanned row against the budget. The deadline is polled
  /// every 256 rows to keep the clock off the per-row hot path.
  Status ChargeScannedRow() {
    ++rows_scanned;
    if (max_rows_scanned > 0 && rows_scanned > max_rows_scanned) {
      return Status::ResourceExhausted("executor row budget exceeded");
    }
    if (exec_deadline_ms > 0 && (rows_scanned & 255) == 0 && clock_ms &&
        clock_ms() > exec_deadline_ms) {
      return Status::ResourceExhausted("executor deadline exceeded");
    }
    return Status::OK();
  }
};

}  // namespace taurus

#endif  // TAURUS_EXEC_EXEC_CONTEXT_H_
