#ifndef TAURUS_EXEC_EXPR_EVAL_H_
#define TAURUS_EXEC_EXPR_EVAL_H_

#include <vector>

#include "common/result.h"
#include "exec/exec_context.h"
#include "exec/frame.h"
#include "parser/ast.h"

namespace taurus {

/// Post-aggregation evaluation context: expressions above a GROUP BY are
/// matched structurally against the computed aggregates and group keys
/// before falling back to (representative-row) frame evaluation.
struct AggContext {
  const std::vector<const Expr*>* agg_exprs = nullptr;
  const Row* agg_values = nullptr;  ///< parallel to agg_exprs
  const std::vector<const Expr*>* group_exprs = nullptr;
  const Row* group_values = nullptr;  ///< parallel to group_exprs
};

/// Evaluates `expr` against the current frame. A column reference whose
/// slot is unoccupied evaluates to SQL NULL (this is how NULL-extended
/// rows of outer joins and semi-join outputs work). Expression subqueries
/// are executed through their compiled subplans in `ctx->query`.
Result<Value> EvalExpr(const Expr& expr, const Frame& frame,
                       const AggContext* agg, ExecContext* ctx);

/// Evaluates a predicate with SQL three-valued semantics reduced to a
/// boolean: true iff the value is non-NULL and truthy.
Result<bool> EvalPredicate(const Expr& expr, const Frame& frame,
                           const AggContext* agg, ExecContext* ctx);

/// Evaluates each conjunct; false as soon as one fails.
Result<bool> EvalConjuncts(const std::vector<const Expr*>& conds,
                           const Frame& frame, const AggContext* agg,
                           ExecContext* ctx);

// --- Scalar kernels -------------------------------------------------------
// The per-value pieces of the interpreter, shared with the vectorized
// evaluator (vector_ops.cc) so both paths produce bit-identical values.

/// +,-,*,/,% with MySQL numeric semantics (int stays int; /0 and %0 -> NULL).
Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r);

/// =,<>,<,<=,>,>= with NULL propagation.
Value EvalComparison(BinaryOp op, const Value& l, const Value& r);

/// NOT / negation / IS [NOT] NULL.
Result<Value> EvalUnary(UnaryOp op, const Value& v);

/// CAST to `target` with MySQL coercion rules.
Result<Value> EvalCast(const Value& v, TypeId target);

/// Scalar function dispatch over already-evaluated arguments.
Result<Value> EvalFunction(const Expr& expr, std::vector<Value> args);

/// date/datetime + INTERVAL (unit and amount taken from `expr`).
Value EvalIntervalAdd(const Expr& expr, const Value& v);

/// Folds an expression with no column references, subqueries or aggregates
/// to a literal value. Returns NotSupported for non-constant expressions.
Result<Value> EvalConstExpr(const Expr& expr);

/// True when `expr` contains no column references, subqueries or aggregates.
bool IsConstExpr(const Expr& expr);

}  // namespace taurus

#endif  // TAURUS_EXEC_EXPR_EVAL_H_
