#ifndef TAURUS_EXEC_EXEC_PROFILE_H_
#define TAURUS_EXEC_EXEC_PROFILE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace taurus {

/// One worker slot's share of a query's morsel-parallel execution
/// (DESIGN.md section 15). Workers write their own slot without
/// synchronization; the main thread folds the slots together only after
/// the pool joins.
struct WorkerProfile {
  /// Wall time spent executing morsels (Open + consume, per morsel).
  double busy_ms = 0.0;
  /// Pipeline wall time not spent executing morsels: queue hand-off plus
  /// waiting for the slowest peer after this worker drained the queue.
  double idle_ms = 0.0;
  /// Morsels this worker claimed from the shared queue.
  int64_t morsels = 0;
  /// Driver rows processed through the vectorized batch chain vs the
  /// row-at-a-time Volcano clone.
  int64_t batch_rows = 0;
  int64_t volcano_rows = 0;
};

/// Per-query executor profile: per-worker morsel timing aggregated across
/// every morsel-parallel pipeline of the query. Copyable (folded into
/// QueryResult and the flight recorder). Admission-queue wait is the third
/// leg next to busy/idle — it is attributed by the server layer from the
/// admission ticket, not measured by the executor.
struct ExecProfile {
  /// True when profiling was armed for this query
  /// (ExecutorConfig::enable_profiling); an enabled profile with no worker
  /// slots means every pipeline ran serial.
  bool enabled = false;
  /// Morsel-parallel pipelines that contributed worker slots.
  int pipelines = 0;
  /// Wall time the query spent queued in the admission controller.
  double admission_wait_ms = 0.0;
  /// Indexed by worker slot; sized by the widest DOP any pipeline used.
  std::vector<WorkerProfile> workers;

  double busy_ms() const {
    double total = 0.0;
    for (const WorkerProfile& w : workers) total += w.busy_ms;
    return total;
  }
  double idle_ms() const {
    double total = 0.0;
    for (const WorkerProfile& w : workers) total += w.idle_ms;
    return total;
  }
  int64_t morsels() const {
    int64_t total = 0;
    for (const WorkerProfile& w : workers) total += w.morsels;
    return total;
  }

  /// Folds one finished pipeline's worker slots into the query profile.
  void MergePipeline(const std::vector<WorkerProfile>& pipeline_workers) {
    ++pipelines;
    if (workers.size() < pipeline_workers.size()) {
      workers.resize(pipeline_workers.size());
    }
    for (size_t w = 0; w < pipeline_workers.size(); ++w) {
      workers[w].busy_ms += pipeline_workers[w].busy_ms;
      workers[w].idle_ms += pipeline_workers[w].idle_ms;
      workers[w].morsels += pipeline_workers[w].morsels;
      workers[w].batch_rows += pipeline_workers[w].batch_rows;
      workers[w].volcano_rows += pipeline_workers[w].volcano_rows;
    }
  }
};

}  // namespace taurus

#endif  // TAURUS_EXEC_EXEC_PROFILE_H_
