#include "exec/block_executor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <unordered_map>

#include "exec/expr_eval.h"

namespace taurus {

namespace {

/// Returns the ref_ids of all leaves under a physical subtree.
std::vector<int> SubtreeRefs(const PhysOp& op) {
  std::vector<const PhysOp*> leaves;
  op.CollectLeaves(&leaves);
  std::vector<int> refs;
  refs.reserve(leaves.size());
  for (const PhysOp* leaf : leaves) refs.push_back(leaf->leaf->ref_id);
  return refs;
}

void ClearSlots(Frame* frame, const std::vector<int>& refs) {
  for (int r : refs) (*frame)[static_cast<size_t>(r)] = nullptr;
}

// ---------------------------------------------------------------------------
// Frame iterators
// ---------------------------------------------------------------------------

class FrameIter {
 public:
  virtual ~FrameIter() = default;
  /// (Re)positions the iterator at the start. The frame carries the current
  /// outer bindings; index lookups and correlated derived tables read them
  /// here (a re-Open with new bindings is a "rebind").
  virtual Status Open(Frame* frame, ExecContext* ctx) = 0;
  /// Advances; on success fills this subtree's slots in `frame`.
  virtual Result<bool> Next(Frame* frame, ExecContext* ctx) = 0;
};

class TableScanIter : public FrameIter {
 public:
  explicit TableScanIter(const PhysOp* op) : op_(op) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    (void)frame;
    data_ = ctx->storage->Get(op_->leaf->table->id);
    if (data_ == nullptr) {
      return Status::Internal("no storage for table " + op_->leaf->table_name);
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    size_t slot = static_cast<size_t>(op_->leaf->ref_id);
    while (pos_ < data_->NumRows()) {
      (*frame)[slot] = &data_->row(pos_++);
      TAURUS_RETURN_IF_ERROR(ctx->ChargeScannedRow());
      TAURUS_ASSIGN_OR_RETURN(bool ok,
                              EvalConjuncts(op_->filters, *frame, nullptr, ctx));
      if (ok) return true;
    }
    (*frame)[slot] = nullptr;
    return false;
  }

 private:
  const PhysOp* op_;
  const TableData* data_ = nullptr;
  size_t pos_ = 0;
};

class IndexRangeIter : public FrameIter {
 public:
  explicit IndexRangeIter(const PhysOp* op) : op_(op) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    data_ = ctx->storage->Get(op_->leaf->table->id);
    if (data_ == nullptr || op_->index_id < 0 ||
        op_->index_id >= data_->NumIndexes()) {
      return Status::Internal("bad index range target");
    }
    const OrderedIndex& index = data_->index(op_->index_id);
    Value lo, hi;
    const Value* lo_ptr = nullptr;
    const Value* hi_ptr = nullptr;
    if (op_->range_lo != nullptr) {
      TAURUS_ASSIGN_OR_RETURN(lo, EvalExpr(*op_->range_lo, *frame, nullptr, ctx));
      lo_ptr = &lo;
    }
    if (op_->range_hi != nullptr) {
      TAURUS_ASSIGN_OR_RETURN(hi, EvalExpr(*op_->range_hi, *frame, nullptr, ctx));
      hi_ptr = &hi;
    }
    auto [b, e] = index.Range(lo_ptr, op_->lo_inclusive, hi_ptr,
                              op_->hi_inclusive);
    begin_ = b;
    end_ = e;
    pos_ = b;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    size_t slot = static_cast<size_t>(op_->leaf->ref_id);
    const OrderedIndex& index = data_->index(op_->index_id);
    while (pos_ < end_) {
      (*frame)[slot] = &data_->row(index.entry(pos_++).row_id);
      TAURUS_RETURN_IF_ERROR(ctx->ChargeScannedRow());
      TAURUS_ASSIGN_OR_RETURN(bool ok,
                              EvalConjuncts(op_->filters, *frame, nullptr, ctx));
      if (ok) return true;
    }
    (*frame)[slot] = nullptr;
    return false;
  }

 private:
  const PhysOp* op_;
  const TableData* data_ = nullptr;
  size_t begin_ = 0, end_ = 0, pos_ = 0;
};

class IndexLookupIter : public FrameIter {
 public:
  explicit IndexLookupIter(const PhysOp* op) : op_(op) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    data_ = ctx->storage->Get(op_->leaf->table->id);
    if (data_ == nullptr || op_->index_id < 0 ||
        op_->index_id >= data_->NumIndexes()) {
      return Status::Internal("bad index lookup target");
    }
    Row key;
    key.reserve(op_->lookup_keys.size());
    bool has_null = false;
    for (const Expr* e : op_->lookup_keys) {
      TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, *frame, nullptr, ctx));
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    ++ctx->index_lookups;
    if (has_null) {  // equality with NULL never matches
      begin_ = end_ = pos_ = 0;
      empty_ = true;
      return Status::OK();
    }
    empty_ = false;
    auto [b, e] = data_->index(op_->index_id).EqualRange(key);
    begin_ = b;
    end_ = e;
    pos_ = b;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    size_t slot = static_cast<size_t>(op_->leaf->ref_id);
    if (!empty_) {
      const OrderedIndex& index = data_->index(op_->index_id);
      while (pos_ < end_) {
        (*frame)[slot] = &data_->row(index.entry(pos_++).row_id);
        TAURUS_RETURN_IF_ERROR(ctx->ChargeScannedRow());
        TAURUS_ASSIGN_OR_RETURN(
            bool ok, EvalConjuncts(op_->filters, *frame, nullptr, ctx));
        if (ok) return true;
      }
    }
    (*frame)[slot] = nullptr;
    return false;
  }

 private:
  const PhysOp* op_;
  const TableData* data_ = nullptr;
  size_t begin_ = 0, end_ = 0, pos_ = 0;
  bool empty_ = false;
};

class DerivedScanIter : public FrameIter {
 public:
  explicit DerivedScanIter(const PhysOp* op) : op_(op) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    if (op_->invalidate_on_rebind) {
      if (materialized_) ++ctx->rebinds;
      TAURUS_ASSIGN_OR_RETURN(rows_,
                              ExecuteBlock(*op_->derived_plan, *frame, ctx));
      materialized_ = true;
    } else if (!materialized_) {
      // Non-correlated derived tables (incl. CTE copies) materialize once
      // per query, shared across subplan re-executions.
      auto it = ctx->derived_cache.find(op_->derived_plan);
      if (it == ctx->derived_cache.end()) {
        TAURUS_ASSIGN_OR_RETURN(
            std::vector<Row> rows,
            ExecuteBlock(*op_->derived_plan, *frame, ctx));
        it = ctx->derived_cache.emplace(op_->derived_plan, std::move(rows))
                 .first;
      }
      cached_rows_ = &it->second;
      materialized_ = true;
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    size_t slot = static_cast<size_t>(op_->leaf->ref_id);
    const std::vector<Row>& rows =
        cached_rows_ != nullptr ? *cached_rows_ : rows_;
    while (pos_ < rows.size()) {
      (*frame)[slot] = &rows[pos_++];
      TAURUS_ASSIGN_OR_RETURN(bool ok,
                              EvalConjuncts(op_->filters, *frame, nullptr, ctx));
      if (ok) return true;
    }
    (*frame)[slot] = nullptr;
    return false;
  }

 private:
  const PhysOp* op_;
  std::vector<Row> rows_;
  const std::vector<Row>* cached_rows_ = nullptr;
  size_t pos_ = 0;
  bool materialized_ = false;
};

class FilterIter : public FrameIter {
 public:
  FilterIter(const PhysOp* op, std::unique_ptr<FrameIter> child)
      : op_(op), child_(std::move(child)) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    return child_->Open(frame, ctx);
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    while (true) {
      TAURUS_ASSIGN_OR_RETURN(bool has, child_->Next(frame, ctx));
      if (!has) return false;
      TAURUS_ASSIGN_OR_RETURN(bool ok,
                              EvalConjuncts(op_->conds, *frame, nullptr, ctx));
      if (ok) return true;
    }
  }

 private:
  const PhysOp* op_;
  std::unique_ptr<FrameIter> child_;
};

class NLJoinIter : public FrameIter {
 public:
  NLJoinIter(const PhysOp* op, std::unique_ptr<FrameIter> left,
             std::unique_ptr<FrameIter> right)
      : op_(op),
        left_(std::move(left)),
        right_(std::move(right)),
        right_refs_(SubtreeRefs(*op->right)) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    TAURUS_RETURN_IF_ERROR(left_->Open(frame, ctx));
    have_left_ = false;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    const JoinType jt = op_->join_type;
    while (true) {
      if (!have_left_) {
        TAURUS_ASSIGN_OR_RETURN(bool has, left_->Next(frame, ctx));
        if (!has) return false;
        have_left_ = true;
        matched_ = false;
        TAURUS_RETURN_IF_ERROR(right_->Open(frame, ctx));  // rebind
      }
      while (true) {
        TAURUS_ASSIGN_OR_RETURN(bool has, right_->Next(frame, ctx));
        if (!has) break;
        TAURUS_ASSIGN_OR_RETURN(bool ok,
                                EvalConjuncts(op_->conds, *frame, nullptr, ctx));
        if (!ok) continue;
        matched_ = true;
        if (jt == JoinType::kSemi) {
          ClearSlots(frame, right_refs_);
          have_left_ = false;
          return true;
        }
        if (jt == JoinType::kAntiSemi) break;  // reject this left row
        return true;  // inner / cross / left
      }
      // Right side exhausted (or anti-semi matched).
      bool emit_unmatched =
          (jt == JoinType::kLeft || jt == JoinType::kAntiSemi) && !matched_;
      have_left_ = false;
      if (emit_unmatched) {
        ClearSlots(frame, right_refs_);  // NULL-extend / project left only
        return true;
      }
    }
  }

 private:
  const PhysOp* op_;
  std::unique_ptr<FrameIter> left_;
  std::unique_ptr<FrameIter> right_;
  std::vector<int> right_refs_;
  bool have_left_ = false;
  bool matched_ = false;
};

/// Hash join. Convention: the build side is the right child — except for
/// INNER hash joins, where (matching the MySQL quirk the paper reports in
/// Section 7 item 2) the BUILD side is the LEFT child and the probe side
/// the right. The Orca plan converter flips Orca's children for inner hash
/// joins so that Orca's intended build side lands on the left.
class HashJoinIter : public FrameIter {
 public:
  HashJoinIter(const PhysOp* op, std::unique_ptr<FrameIter> left,
               std::unique_ptr<FrameIter> right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {
    build_is_left_ = (op->join_type == JoinType::kInner ||
                      op->join_type == JoinType::kCross);
    build_refs_ = SubtreeRefs(build_is_left_ ? *op->child : *op->right);
    for (const auto& [l, r] : op_->hash_keys) {
      build_keys_.push_back(build_is_left_ ? l : r);
      probe_keys_.push_back(build_is_left_ ? r : l);
    }
  }

  Status Open(Frame* frame, ExecContext* ctx) override {
    table_.clear();
    entries_.clear();
    FrameIter* build = build_is_left_ ? left_.get() : right_.get();
    TAURUS_RETURN_IF_ERROR(build->Open(frame, ctx));
    while (true) {
      TAURUS_ASSIGN_OR_RETURN(bool has, build->Next(frame, ctx));
      if (!has) break;
      Row key;
      key.reserve(build_keys_.size());
      bool has_null = false;
      for (const Expr* e : build_keys_) {
        TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, *frame, nullptr, ctx));
        if (v.is_null()) has_null = true;
        key.push_back(std::move(v));
      }
      if (has_null) continue;  // NULL keys never join
      Entry entry;
      entry.key = std::move(key);
      entry.frame = std::make_unique<OwnedFrame>(*frame);
      uint64_t h = HashRow(entry.key);
      table_.emplace(h, entries_.size());
      entries_.push_back(std::move(entry));
    }
    ClearSlots(frame, build_refs_);
    FrameIter* probe = build_is_left_ ? right_.get() : left_.get();
    TAURUS_RETURN_IF_ERROR(probe->Open(frame, ctx));
    have_probe_ = false;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    const JoinType jt = op_->join_type;
    FrameIter* probe = build_is_left_ ? right_.get() : left_.get();
    while (true) {
      if (!have_probe_) {
        TAURUS_ASSIGN_OR_RETURN(bool has, probe->Next(frame, ctx));
        if (!has) return false;
        have_probe_ = true;
        matched_ = false;
        candidates_.clear();
        cand_pos_ = 0;
        Row key;
        key.reserve(probe_keys_.size());
        bool has_null = false;
        for (const Expr* e : probe_keys_) {
          TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, *frame, nullptr, ctx));
          if (v.is_null()) has_null = true;
          key.push_back(std::move(v));
        }
        if (!has_null) {
          auto [b, e] = table_.equal_range(HashRow(key));
          for (auto it = b; it != e; ++it) {
            const Entry& cand = entries_[it->second];
            bool eq = true;
            for (size_t i = 0; i < key.size(); ++i) {
              if (Value::Compare(cand.key[i], key[i]) != 0) {
                eq = false;
                break;
              }
            }
            if (eq) candidates_.push_back(it->second);
          }
        }
      }
      while (cand_pos_ < candidates_.size()) {
        const Entry& entry = entries_[candidates_[cand_pos_++]];
        // Restore the build subtree's slots from the owned frame.
        for (int r : build_refs_) {
          size_t slot = static_cast<size_t>(r);
          (*frame)[slot] =
              entry.frame->present[slot] ? &entry.frame->rows[slot] : nullptr;
        }
        TAURUS_ASSIGN_OR_RETURN(bool ok,
                                EvalConjuncts(op_->conds, *frame, nullptr, ctx));
        if (!ok) continue;
        matched_ = true;
        if (jt == JoinType::kSemi) {
          ClearSlots(frame, build_refs_);
          have_probe_ = false;
          return true;
        }
        if (jt == JoinType::kAntiSemi) {
          cand_pos_ = candidates_.size();
          break;
        }
        return true;  // inner / cross / left
      }
      bool emit_unmatched =
          (jt == JoinType::kLeft || jt == JoinType::kAntiSemi) && !matched_;
      have_probe_ = false;
      if (emit_unmatched) {
        ClearSlots(frame, build_refs_);
        return true;
      }
    }
  }

 private:
  struct Entry {
    Row key;
    std::unique_ptr<OwnedFrame> frame;
  };

  const PhysOp* op_;
  std::unique_ptr<FrameIter> left_;
  std::unique_ptr<FrameIter> right_;
  bool build_is_left_ = false;
  std::vector<int> build_refs_;
  std::vector<const Expr*> build_keys_;
  std::vector<const Expr*> probe_keys_;

  std::unordered_multimap<uint64_t, size_t> table_;
  std::vector<Entry> entries_;
  bool have_probe_ = false;
  bool matched_ = false;
  std::vector<size_t> candidates_;
  size_t cand_pos_ = 0;
};

std::unique_ptr<FrameIter> BuildIter(const PhysOp* op) {
  switch (op->kind) {
    case PhysOp::Kind::kTableScan:
      return std::make_unique<TableScanIter>(op);
    case PhysOp::Kind::kIndexRange:
      return std::make_unique<IndexRangeIter>(op);
    case PhysOp::Kind::kIndexLookup:
      return std::make_unique<IndexLookupIter>(op);
    case PhysOp::Kind::kDerivedScan:
      return std::make_unique<DerivedScanIter>(op);
    case PhysOp::Kind::kFilter:
      return std::make_unique<FilterIter>(op, BuildIter(op->child.get()));
    case PhysOp::Kind::kNLJoin:
      return std::make_unique<NLJoinIter>(op, BuildIter(op->child.get()),
                                          BuildIter(op->right.get()));
    case PhysOp::Kind::kHashJoin:
      return std::make_unique<HashJoinIter>(op, BuildIter(op->child.get()),
                                            BuildIter(op->right.get()));
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// One aggregate accumulator (SUM/COUNT/AVG/MIN/MAX/STDDEV, with DISTINCT).
struct Accum {
  int64_t count = 0;
  int64_t isum = 0;
  double sum = 0.0;
  double sumsq = 0.0;
  bool int_only = true;
  Value min_v, max_v;
  std::set<Value> distinct;

  void Update(const Expr& agg, const Value& v) {
    if (agg.agg_func == AggFunc::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    if (agg.agg_distinct) {
      distinct.insert(v);
      return;
    }
    Add(v);
  }

  void Add(const Value& v) {
    ++count;
    if (v.kind() == Value::Kind::kInt) {
      isum += v.AsInt();
    } else {
      int_only = false;
    }
    double d = v.AsDouble();
    sum += d;
    sumsq += d * d;
    if (min_v.is_null() || Value::Compare(v, min_v) < 0) min_v = v;
    if (max_v.is_null() || Value::Compare(v, max_v) > 0) max_v = v;
  }

  Value Finalize(const Expr& agg) {
    if (agg.agg_distinct) {
      // Fold the distinct set through a plain accumulator.
      Accum folded;
      for (const Value& v : distinct) folded.Add(v);
      Expr plain;
      plain.kind = Expr::Kind::kAgg;
      plain.agg_func = agg.agg_func;
      return folded.Finalize(plain);
    }
    switch (agg.agg_func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return int_only ? Value::Int(isum) : Value::Double(sum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return min_v;
      case AggFunc::kMax:
        return max_v;
      case AggFunc::kStddev: {
        if (count == 0) return Value::Null();
        double n = static_cast<double>(count);
        double var = sumsq / n - (sum / n) * (sum / n);
        return Value::Double(std::sqrt(std::max(var, 0.0)));
      }
    }
    return Value::Null();
  }
};

/// A finished group, ready for HAVING/ORDER BY/projection.
struct Group {
  Row key;
  Row agg_values;
  OwnedFrame rep;  ///< representative input frame
};

int CompareRows(const Row& a, const Row& b,
                const std::vector<bool>* ascending = nullptr) {
  for (size_t i = 0; i < a.size(); ++i) {
    int c = Value::Compare(a[i], b[i]);
    // NULLs sort first on ASC (MySQL semantics); flip for DESC.
    if (c != 0) {
      bool asc = ascending == nullptr || (*ascending)[i];
      return asc ? c : -c;
    }
  }
  return 0;
}

Result<std::vector<Row>> ExecuteSingle(const BlockPlan& plan,
                                       const Frame& outer, ExecContext* ctx,
                                       bool apply_order_limit) {
  Frame frame = outer;
  std::vector<Row> output;

  const bool has_order = apply_order_limit && !plan.order_keys.empty() &&
                         !plan.order_satisfied;
  const bool has_limit = apply_order_limit && plan.limit >= 0;

  // ---- No FROM clause: one conceptual row. ----
  if (plan.join_root == nullptr && plan.agg_mode == AggMode::kNone) {
    Row row;
    for (const Expr* p : plan.projections) {
      TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, frame, nullptr, ctx));
      row.push_back(std::move(v));
    }
    output.push_back(std::move(row));
    return output;
  }

  std::unique_ptr<FrameIter> iter;
  if (plan.join_root != nullptr) {
    iter = BuildIter(plan.join_root.get());
    TAURUS_RETURN_IF_ERROR(iter->Open(&frame, ctx));
  }

  if (plan.agg_mode != AggMode::kNone) {
    // ---- Aggregation path (hash or sort+stream; same results). ----
    std::vector<Group> groups;
    std::unordered_map<uint64_t, std::vector<size_t>> group_index;
    std::vector<std::vector<Accum>> accums;

    auto consume = [&](const Frame& f) -> Status {
      Row key;
      key.reserve(plan.group_exprs.size());
      for (const Expr* g : plan.group_exprs) {
        TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, f, nullptr, ctx));
        key.push_back(std::move(v));
      }
      uint64_t h = HashRow(key);
      size_t idx = SIZE_MAX;
      for (size_t cand : group_index[h]) {
        if (CompareRows(groups[cand].key, key) == 0) {
          idx = cand;
          break;
        }
      }
      if (idx == SIZE_MAX) {
        idx = groups.size();
        group_index[h].push_back(idx);
        Group g;
        g.key = std::move(key);
        g.rep = OwnedFrame(f);
        groups.push_back(std::move(g));
        accums.emplace_back(plan.agg_exprs.size());
      }
      for (size_t i = 0; i < plan.agg_exprs.size(); ++i) {
        const Expr& agg = *plan.agg_exprs[i];
        Value v;
        if (agg.agg_func != AggFunc::kCountStar) {
          TAURUS_ASSIGN_OR_RETURN(v, EvalExpr(*agg.children[0], f, nullptr, ctx));
        }
        accums[idx][i].Update(agg, v);
      }
      return Status::OK();
    };

    if (iter != nullptr) {
      while (true) {
        TAURUS_ASSIGN_OR_RETURN(bool has, iter->Next(&frame, ctx));
        if (!has) break;
        TAURUS_RETURN_IF_ERROR(consume(frame));
      }
    } else {
      TAURUS_RETURN_IF_ERROR(consume(frame));
    }

    // Scalar aggregation over empty input still yields one group.
    if (groups.empty() && plan.group_exprs.empty()) {
      Group g;
      g.rep = OwnedFrame(frame);
      groups.push_back(std::move(g));
      accums.emplace_back(plan.agg_exprs.size());
    }
    for (size_t i = 0; i < groups.size(); ++i) {
      groups[i].agg_values.reserve(plan.agg_exprs.size());
      for (size_t a = 0; a < plan.agg_exprs.size(); ++a) {
        groups[i].agg_values.push_back(
            accums[i][a].Finalize(*plan.agg_exprs[a]));
      }
    }

    // HAVING, ORDER BY keys, projection per group.
    struct OutUnit {
      Row sort_key;
      Row row;
    };
    std::vector<OutUnit> units;
    for (Group& g : groups) {
      Frame rep_view = g.rep.View();
      AggContext agg_ctx;
      agg_ctx.agg_exprs = &plan.agg_exprs;
      agg_ctx.agg_values = &g.agg_values;
      agg_ctx.group_exprs = &plan.group_exprs;
      agg_ctx.group_values = &g.key;
      if (plan.having != nullptr) {
        TAURUS_ASSIGN_OR_RETURN(
            bool ok, EvalPredicate(*plan.having, rep_view, &agg_ctx, ctx));
        if (!ok) continue;
      }
      OutUnit unit;
      if (has_order) {
        for (const auto& [e, asc] : plan.order_keys) {
          TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, rep_view, &agg_ctx, ctx));
          unit.sort_key.push_back(std::move(v));
        }
      }
      for (const Expr* p : plan.projections) {
        TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, rep_view, &agg_ctx, ctx));
        unit.row.push_back(std::move(v));
      }
      units.push_back(std::move(unit));
    }
    if (has_order) {
      std::vector<bool> asc;
      for (const auto& [e, a] : plan.order_keys) asc.push_back(a);
      std::stable_sort(units.begin(), units.end(),
                       [&](const OutUnit& a, const OutUnit& b) {
                         return CompareRows(a.sort_key, b.sort_key, &asc) < 0;
                       });
    }
    for (OutUnit& u : units) output.push_back(std::move(u.row));
  } else if (has_order) {
    // ---- Materialize, sort, project. ----
    struct SortUnit {
      Row sort_key;
      OwnedFrame frame;
    };
    std::vector<SortUnit> units;
    while (iter != nullptr) {
      TAURUS_ASSIGN_OR_RETURN(bool has, iter->Next(&frame, ctx));
      if (!has) break;
      SortUnit u;
      for (const auto& [e, a] : plan.order_keys) {
        TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, frame, nullptr, ctx));
        u.sort_key.push_back(std::move(v));
      }
      u.frame = OwnedFrame(frame);
      units.push_back(std::move(u));
    }
    std::vector<bool> asc;
    for (const auto& [e, a] : plan.order_keys) asc.push_back(a);
    std::stable_sort(units.begin(), units.end(),
                     [&](const SortUnit& a, const SortUnit& b) {
                       return CompareRows(a.sort_key, b.sort_key, &asc) < 0;
                     });
    for (SortUnit& u : units) {
      Frame view = u.frame.View();
      Row row;
      for (const Expr* p : plan.projections) {
        TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, view, nullptr, ctx));
        row.push_back(std::move(v));
      }
      output.push_back(std::move(row));
    }
  } else {
    // ---- Streaming projection with early LIMIT exit. ----
    int64_t want = has_limit ? plan.offset + plan.limit : -1;
    while (iter != nullptr) {
      if (want >= 0 && static_cast<int64_t>(output.size()) >= want &&
          !plan.distinct) {
        break;
      }
      TAURUS_ASSIGN_OR_RETURN(bool has, iter->Next(&frame, ctx));
      if (!has) break;
      Row row;
      for (const Expr* p : plan.projections) {
        TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, frame, nullptr, ctx));
        row.push_back(std::move(v));
      }
      output.push_back(std::move(row));
    }
  }

  // DISTINCT.
  if (plan.distinct) {
    std::vector<Row> dedup;
    std::unordered_map<uint64_t, std::vector<size_t>> seen;
    for (Row& r : output) {
      uint64_t h = HashRow(r);
      bool dup = false;
      for (size_t idx : seen[h]) {
        if (CompareRows(dedup[idx], r) == 0) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        seen[h].push_back(dedup.size());
        dedup.push_back(std::move(r));
      }
    }
    output = std::move(dedup);
  }

  // OFFSET / LIMIT.
  if (apply_order_limit && (plan.offset > 0 || plan.limit >= 0)) {
    size_t begin = std::min(static_cast<size_t>(plan.offset), output.size());
    size_t end = plan.limit >= 0
                     ? std::min(begin + static_cast<size_t>(plan.limit),
                                output.size())
                     : output.size();
    std::vector<Row> window(std::make_move_iterator(output.begin() + begin),
                            std::make_move_iterator(output.begin() + end));
    output = std::move(window);
  }
  return output;
}

}  // namespace

Result<std::vector<Row>> ExecuteBlock(const BlockPlan& plan,
                                      const Frame& outer, ExecContext* ctx) {
  if (plan.union_arms.empty()) {
    return ExecuteSingle(plan, outer, ctx, /*apply_order_limit=*/true);
  }
  // UNION: run all arms without per-arm ordering, combine, then apply the
  // head block's ORDER BY (resolved to positions) and LIMIT.
  TAURUS_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      ExecuteSingle(plan, outer, ctx, /*apply_order_limit=*/false));
  for (const auto& arm : plan.union_arms) {
    TAURUS_ASSIGN_OR_RETURN(
        std::vector<Row> arm_rows,
        ExecuteSingle(*arm, outer, ctx, /*apply_order_limit=*/false));
    for (Row& r : arm_rows) rows.push_back(std::move(r));
  }
  if (!plan.union_all) {
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
    rows.erase(std::unique(rows.begin(), rows.end(),
                           [](const Row& a, const Row& b) {
                             return CompareRows(a, b) == 0;
                           }),
               rows.end());
  }
  if (!plan.union_order_positions.empty()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (const auto& [pos, asc] : plan.union_order_positions) {
                         int c = Value::Compare(a[static_cast<size_t>(pos)],
                                                b[static_cast<size_t>(pos)]);
                         if (c != 0) return asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
  }
  if (plan.offset > 0 || plan.limit >= 0) {
    size_t begin = std::min(static_cast<size_t>(plan.offset), rows.size());
    size_t end =
        plan.limit >= 0
            ? std::min(begin + static_cast<size_t>(plan.limit), rows.size())
            : rows.size();
    std::vector<Row> window(std::make_move_iterator(rows.begin() + begin),
                            std::make_move_iterator(rows.begin() + end));
    rows = std::move(window);
  }
  return rows;
}

Result<std::vector<Row>> ExecuteQuery(CompiledQuery* query,
                                      const Storage& storage,
                                      ExecContext* ctx_out) {
  ExecContext local;
  ExecContext* ctx = ctx_out != nullptr ? ctx_out : &local;
  ctx->storage = &storage;
  ctx->query = query;
  ctx->subplan_cache.clear();
  Frame outer(static_cast<size_t>(query->num_refs), nullptr);
  return ExecuteBlock(*query->root, outer, ctx);
}

}  // namespace taurus
