#include "exec/block_executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <unordered_map>

#include "common/thread_pool.h"
#include "exec/batch_executor.h"
#include "exec/exec_internal.h"
#include "exec/expr_eval.h"
#include "exec/vector_ops.h"

namespace taurus {

std::vector<int> SubtreeRefs(const PhysOp& op) {
  std::vector<const PhysOp*> leaves;
  op.CollectLeaves(&leaves);
  std::vector<int> refs;
  refs.reserve(leaves.size());
  for (const PhysOp* leaf : leaves) refs.push_back(leaf->leaf->ref_id);
  return refs;
}

void ClearSlots(Frame* frame, const std::vector<int>& refs) {
  for (int r : refs) (*frame)[static_cast<size_t>(r)] = nullptr;
}

// ---------------------------------------------------------------------------
// Frame iterators
// ---------------------------------------------------------------------------

namespace {

class TableScanIter : public FrameIter {
 public:
  explicit TableScanIter(const PhysOp* op) : op_(op) {}

  /// Restricts the scan to rows [begin, end): the morsel-driven executor
  /// drives one worker-private instance per chain, repositioning it with
  /// SetRange + Open for each morsel it claims.
  void SetRange(size_t begin, size_t end) {
    ranged_ = true;
    range_begin_ = begin;
    range_end_ = end;
  }

  const PhysOp* Op() const { return op_; }

  Status Open(Frame* frame, ExecContext* ctx) override {
    (void)frame;
    data_ = ctx->storage->Get(op_->leaf->table->id);
    if (data_ == nullptr) {
      return Status::Internal("no storage for table " + op_->leaf->table_name);
    }
    pos_ = ranged_ ? range_begin_ : 0;
    end_ = ranged_ ? std::min(range_end_, data_->NumRows()) : data_->NumRows();
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    size_t slot = static_cast<size_t>(op_->leaf->ref_id);
    while (pos_ < end_) {
      (*frame)[slot] = &data_->row(pos_++);
      TAURUS_RETURN_IF_ERROR(ctx->ChargeScannedRow());
      TAURUS_ASSIGN_OR_RETURN(bool ok,
                              EvalConjuncts(op_->filters, *frame, nullptr, ctx));
      if (ok) return true;
    }
    (*frame)[slot] = nullptr;
    return false;
  }

 private:
  const PhysOp* op_;
  const TableData* data_ = nullptr;
  size_t pos_ = 0;
  size_t end_ = 0;
  bool ranged_ = false;
  size_t range_begin_ = 0, range_end_ = 0;
};

class IndexRangeIter : public FrameIter {
 public:
  explicit IndexRangeIter(const PhysOp* op) : op_(op) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    data_ = ctx->storage->Get(op_->leaf->table->id);
    if (data_ == nullptr || op_->index_id < 0 ||
        op_->index_id >= data_->NumIndexes()) {
      return Status::Internal("bad index range target");
    }
    const OrderedIndex& index = data_->index(op_->index_id);
    Value lo, hi;
    const Value* lo_ptr = nullptr;
    const Value* hi_ptr = nullptr;
    if (op_->range_lo != nullptr) {
      TAURUS_ASSIGN_OR_RETURN(lo, EvalExpr(*op_->range_lo, *frame, nullptr, ctx));
      lo_ptr = &lo;
    }
    if (op_->range_hi != nullptr) {
      TAURUS_ASSIGN_OR_RETURN(hi, EvalExpr(*op_->range_hi, *frame, nullptr, ctx));
      hi_ptr = &hi;
    }
    auto [b, e] = index.Range(lo_ptr, op_->lo_inclusive, hi_ptr,
                              op_->hi_inclusive);
    begin_ = b;
    end_ = e;
    pos_ = b;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    size_t slot = static_cast<size_t>(op_->leaf->ref_id);
    const OrderedIndex& index = data_->index(op_->index_id);
    while (pos_ < end_) {
      (*frame)[slot] = &data_->row(index.entry(pos_++).row_id);
      TAURUS_RETURN_IF_ERROR(ctx->ChargeScannedRow());
      TAURUS_ASSIGN_OR_RETURN(bool ok,
                              EvalConjuncts(op_->filters, *frame, nullptr, ctx));
      if (ok) return true;
    }
    (*frame)[slot] = nullptr;
    return false;
  }

 private:
  const PhysOp* op_;
  const TableData* data_ = nullptr;
  size_t begin_ = 0, end_ = 0, pos_ = 0;
};

class IndexLookupIter : public FrameIter {
 public:
  explicit IndexLookupIter(const PhysOp* op) : op_(op) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    data_ = ctx->storage->Get(op_->leaf->table->id);
    if (data_ == nullptr || op_->index_id < 0 ||
        op_->index_id >= data_->NumIndexes()) {
      return Status::Internal("bad index lookup target");
    }
    Row key;
    key.reserve(op_->lookup_keys.size());
    bool has_null = false;
    for (const Expr* e : op_->lookup_keys) {
      TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, *frame, nullptr, ctx));
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    ++ctx->index_lookups;
    if (has_null) {  // equality with NULL never matches
      begin_ = end_ = pos_ = 0;
      empty_ = true;
      return Status::OK();
    }
    empty_ = false;
    auto [b, e] = data_->index(op_->index_id).EqualRange(key);
    begin_ = b;
    end_ = e;
    pos_ = b;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    size_t slot = static_cast<size_t>(op_->leaf->ref_id);
    if (!empty_) {
      const OrderedIndex& index = data_->index(op_->index_id);
      while (pos_ < end_) {
        (*frame)[slot] = &data_->row(index.entry(pos_++).row_id);
        TAURUS_RETURN_IF_ERROR(ctx->ChargeScannedRow());
        TAURUS_ASSIGN_OR_RETURN(
            bool ok, EvalConjuncts(op_->filters, *frame, nullptr, ctx));
        if (ok) return true;
      }
    }
    (*frame)[slot] = nullptr;
    return false;
  }

 private:
  const PhysOp* op_;
  const TableData* data_ = nullptr;
  size_t begin_ = 0, end_ = 0, pos_ = 0;
  bool empty_ = false;
};

class DerivedScanIter : public FrameIter {
 public:
  explicit DerivedScanIter(const PhysOp* op) : op_(op) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    if (op_->invalidate_on_rebind) {
      if (materialized_) ++ctx->rebinds;
      TAURUS_ASSIGN_OR_RETURN(rows_,
                              ExecuteBlock(*op_->derived_plan, *frame, ctx));
      materialized_ = true;
    } else if (!materialized_) {
      // Non-correlated derived tables (incl. CTE copies) materialize once
      // per query, shared across subplan re-executions.
      auto it = ctx->derived_cache.find(op_->derived_plan);
      if (it == ctx->derived_cache.end()) {
        TAURUS_ASSIGN_OR_RETURN(
            std::vector<Row> rows,
            ExecuteBlock(*op_->derived_plan, *frame, ctx));
        it = ctx->derived_cache.emplace(op_->derived_plan, std::move(rows))
                 .first;
      }
      cached_rows_ = &it->second;
      materialized_ = true;
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    size_t slot = static_cast<size_t>(op_->leaf->ref_id);
    const std::vector<Row>& rows =
        cached_rows_ != nullptr ? *cached_rows_ : rows_;
    while (pos_ < rows.size()) {
      (*frame)[slot] = &rows[pos_++];
      TAURUS_ASSIGN_OR_RETURN(bool ok,
                              EvalConjuncts(op_->filters, *frame, nullptr, ctx));
      if (ok) return true;
    }
    (*frame)[slot] = nullptr;
    return false;
  }

 private:
  const PhysOp* op_;
  std::vector<Row> rows_;
  const std::vector<Row>* cached_rows_ = nullptr;
  size_t pos_ = 0;
  bool materialized_ = false;
};

class FilterIter : public FrameIter {
 public:
  FilterIter(const PhysOp* op, std::unique_ptr<FrameIter> child)
      : op_(op), child_(std::move(child)) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    return child_->Open(frame, ctx);
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    while (true) {
      TAURUS_ASSIGN_OR_RETURN(bool has, child_->Next(frame, ctx));
      if (!has) return false;
      TAURUS_ASSIGN_OR_RETURN(bool ok,
                              EvalConjuncts(op_->conds, *frame, nullptr, ctx));
      if (ok) return true;
    }
  }

 private:
  const PhysOp* op_;
  std::unique_ptr<FrameIter> child_;
};

class NLJoinIter : public FrameIter {
 public:
  NLJoinIter(const PhysOp* op, std::unique_ptr<FrameIter> left,
             std::unique_ptr<FrameIter> right)
      : op_(op),
        left_(std::move(left)),
        right_(std::move(right)),
        right_refs_(SubtreeRefs(*op->right)) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    TAURUS_RETURN_IF_ERROR(left_->Open(frame, ctx));
    have_left_ = false;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    const JoinType jt = op_->join_type;
    while (true) {
      if (!have_left_) {
        TAURUS_ASSIGN_OR_RETURN(bool has, left_->Next(frame, ctx));
        if (!has) return false;
        have_left_ = true;
        matched_ = false;
        TAURUS_RETURN_IF_ERROR(right_->Open(frame, ctx));  // rebind
      }
      while (true) {
        TAURUS_ASSIGN_OR_RETURN(bool has, right_->Next(frame, ctx));
        if (!has) break;
        TAURUS_ASSIGN_OR_RETURN(bool ok,
                                EvalConjuncts(op_->conds, *frame, nullptr, ctx));
        if (!ok) continue;
        matched_ = true;
        if (jt == JoinType::kSemi) {
          ClearSlots(frame, right_refs_);
          have_left_ = false;
          return true;
        }
        if (jt == JoinType::kAntiSemi) break;  // reject this left row
        return true;  // inner / cross / left
      }
      // Right side exhausted (or anti-semi matched).
      bool emit_unmatched =
          (jt == JoinType::kLeft || jt == JoinType::kAntiSemi) && !matched_;
      have_left_ = false;
      if (emit_unmatched) {
        ClearSlots(frame, right_refs_);  // NULL-extend / project left only
        return true;
      }
    }
  }

 private:
  const PhysOp* op_;
  std::unique_ptr<FrameIter> left_;
  std::unique_ptr<FrameIter> right_;
  std::vector<int> right_refs_;
  bool have_left_ = false;
  bool matched_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// Convention: the build side is the right child — except for INNER hash
/// joins, where (matching the MySQL quirk the paper reports in Section 7
/// item 2) the BUILD side is the LEFT child and the probe side the right.
/// The Orca plan converter flips Orca's children for inner hash joins so
/// that Orca's intended build side lands on the left.
HashJoinLayout MakeHashJoinLayout(const PhysOp& op) {
  HashJoinLayout layout;
  layout.build_is_left = (op.join_type == JoinType::kInner ||
                          op.join_type == JoinType::kCross);
  layout.build_refs =
      SubtreeRefs(layout.build_is_left ? *op.child : *op.right);
  for (const auto& [l, r] : op.hash_keys) {
    layout.build_keys.push_back(layout.build_is_left ? l : r);
    layout.probe_keys.push_back(layout.build_is_left ? r : l);
  }
  return layout;
}

/// The sketchable stream key of one hash-join side: the side must be a
/// single leaf (scan / index range / derived scan) joined on exactly one
/// plain column of that leaf, so the sketch describes "column C of the
/// filtered leaf R" — the granularity the optimizer's join-size estimator
/// looks up (DESIGN.md section 11). Returns "" when not sketchable.
std::string SketchStreamKey(const PhysOp& side,
                            const std::vector<const Expr*>& keys) {
  if (keys.size() != 1) return "";
  if (side.kind != PhysOp::Kind::kTableScan &&
      side.kind != PhysOp::Kind::kIndexRange &&
      side.kind != PhysOp::Kind::kDerivedScan) {
    return "";
  }
  if (side.leaf == nullptr) return "";
  const Expr* key = keys[0];
  if (key->kind != Expr::Kind::kColumnRef ||
      key->ref_id != side.leaf->ref_id) {
    return "";
  }
  return SketchSet::StreamKey(key->ref_id, key->column_idx);
}

/// Drains `build` into `out`. Buffers only the build subtree's frame slots
/// per row, and pre-sizes the table from the optimizer's cardinality
/// estimate to cut rehashing on large builds.
Status FillHashJoinState(const PhysOp& op, const HashJoinLayout& layout,
                         FrameIter* build, Frame* frame, ExecContext* ctx,
                         HashJoinShared* out) {
  out->table.clear();
  out->entries.clear();
  const PhysOp& build_child = layout.build_is_left ? *op.child : *op.right;
  if (build_child.est_rows > 1.0) {
    // Cap the reservation: estimates can be wildly high after bad stats.
    size_t cap = static_cast<size_t>(
        std::min(build_child.est_rows, 16.0 * 1024 * 1024));
    out->entries.reserve(cap);
    out->table.reserve(cap);
  }
  // Opportunistic Fast-AGMS stream over the build keys. The plan node is
  // the stream owner, so a rebuild (re-Open inside a nested loop, or a
  // parallel prebuild followed by a serial fallback) poisons the stream
  // instead of double-counting its rows.
  AgmsSketch* sketch = nullptr;
  if (ctx->sketches != nullptr) {
    std::string stream = SketchStreamKey(build_child, layout.build_keys);
    if (!stream.empty()) sketch = ctx->sketches->BeginStream(stream, &op);
  }
  TAURUS_RETURN_IF_ERROR(build->Open(frame, ctx));
  while (true) {
    TAURUS_ASSIGN_OR_RETURN(bool has, build->Next(frame, ctx));
    if (!has) break;
    Row key;
    key.reserve(layout.build_keys.size());
    bool has_null = false;
    for (const Expr* e : layout.build_keys) {
      TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, *frame, nullptr, ctx));
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    if (has_null) continue;  // NULL keys never join
    if (sketch != nullptr) sketch->Update(key[0].Hash());
    HashJoinShared::Entry entry;
    entry.key = std::move(key);
    entry.frame = OwnedFrame(*frame, layout.build_refs);
    uint64_t h = HashRow(entry.key);
    out->table.emplace(h, out->entries.size());
    out->entries.push_back(std::move(entry));
  }
  ClearSlots(frame, layout.build_refs);
  return Status::OK();
}

namespace {

class HashJoinIter : public FrameIter {
 public:
  /// Serial form: owns both children and (re)builds its own hash state on
  /// every Open (a re-Open with new outer bindings must rebuild).
  HashJoinIter(const PhysOp* op, std::unique_ptr<FrameIter> left,
               std::unique_ptr<FrameIter> right)
      : op_(op), layout_(MakeHashJoinLayout(*op)) {
    if (layout_.build_is_left) {
      build_iter_ = std::move(left);
      probe_iter_ = std::move(right);
    } else {
      build_iter_ = std::move(right);
      probe_iter_ = std::move(left);
    }
  }

  /// Parallel worker-clone form: probes a pre-built shared read-only state;
  /// Open only repositions the probe chain.
  HashJoinIter(const PhysOp* op, std::unique_ptr<FrameIter> probe,
               const HashJoinShared* shared)
      : op_(op),
        layout_(MakeHashJoinLayout(*op)),
        probe_iter_(std::move(probe)),
        shared_(shared) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    if (shared_ == nullptr) {
      TAURUS_RETURN_IF_ERROR(FillHashJoinState(*op_, layout_,
                                               build_iter_.get(), frame, ctx,
                                               &own_state_));
    } else {
      ClearSlots(frame, layout_.build_refs);
    }
    // Probe-side Fast-AGMS stream, serial pipelines only (worker shards
    // would each replay the stream per morsel). The iterator instance is
    // the owner: a re-Open replays probe rows, poisoning the stream.
    probe_sketch_ = nullptr;
    if (ctx->sketches != nullptr && !ctx->is_worker_shard &&
        shared_ == nullptr) {
      const PhysOp& probe_child =
          layout_.build_is_left ? *op_->right : *op_->child;
      std::string stream = SketchStreamKey(probe_child, layout_.probe_keys);
      if (!stream.empty()) {
        probe_sketch_ = ctx->sketches->BeginStream(stream, this);
      }
    }
    TAURUS_RETURN_IF_ERROR(probe_iter_->Open(frame, ctx));
    have_probe_ = false;
    return Status::OK();
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    const JoinType jt = op_->join_type;
    const HashJoinShared& state = shared_ != nullptr ? *shared_ : own_state_;
    while (true) {
      if (!have_probe_) {
        TAURUS_ASSIGN_OR_RETURN(bool has, probe_iter_->Next(frame, ctx));
        if (!has) return false;
        have_probe_ = true;
        matched_ = false;
        candidates_.clear();
        cand_pos_ = 0;
        Row key;
        key.reserve(layout_.probe_keys.size());
        bool has_null = false;
        for (const Expr* e : layout_.probe_keys) {
          TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, *frame, nullptr, ctx));
          if (v.is_null()) has_null = true;
          key.push_back(std::move(v));
        }
        if (!has_null) {
          if (probe_sketch_ != nullptr) probe_sketch_->Update(key[0].Hash());
          auto [b, e] = state.table.equal_range(HashRow(key));
          for (auto it = b; it != e; ++it) {
            const HashJoinShared::Entry& cand = state.entries[it->second];
            bool eq = true;
            for (size_t i = 0; i < key.size(); ++i) {
              if (Value::Compare(cand.key[i], key[i]) != 0) {
                eq = false;
                break;
              }
            }
            if (eq) candidates_.push_back(it->second);
          }
        }
      }
      while (cand_pos_ < candidates_.size()) {
        const HashJoinShared::Entry& entry =
            state.entries[candidates_[cand_pos_++]];
        // Restore the build subtree's slots from the owned frame.
        for (int r : layout_.build_refs) {
          size_t slot = static_cast<size_t>(r);
          (*frame)[slot] =
              entry.frame.present[slot] ? &entry.frame.rows[slot] : nullptr;
        }
        TAURUS_ASSIGN_OR_RETURN(bool ok,
                                EvalConjuncts(op_->conds, *frame, nullptr, ctx));
        if (!ok) continue;
        matched_ = true;
        if (jt == JoinType::kSemi) {
          ClearSlots(frame, layout_.build_refs);
          have_probe_ = false;
          return true;
        }
        if (jt == JoinType::kAntiSemi) {
          cand_pos_ = candidates_.size();
          break;
        }
        return true;  // inner / cross / left
      }
      bool emit_unmatched =
          (jt == JoinType::kLeft || jt == JoinType::kAntiSemi) && !matched_;
      have_probe_ = false;
      if (emit_unmatched) {
        ClearSlots(frame, layout_.build_refs);
        return true;
      }
    }
  }

 private:
  const PhysOp* op_;
  HashJoinLayout layout_;
  std::unique_ptr<FrameIter> build_iter_;  ///< null for worker clones
  std::unique_ptr<FrameIter> probe_iter_;
  const HashJoinShared* shared_ = nullptr;  ///< set for worker clones
  HashJoinShared own_state_;                ///< used by the serial form
  AgmsSketch* probe_sketch_ = nullptr;      ///< claimed per Open, or null

  bool have_probe_ = false;
  bool matched_ = false;
  std::vector<size_t> candidates_;
  size_t cand_pos_ = 0;
};

/// EXPLAIN ANALYZE decorator: records actual rows (Next returning true),
/// loops (Open calls) and inclusive wall time for one plan node. Only
/// instantiated when the context collects actuals, so the plain iterator
/// chain is untouched — and therefore unmeasurable — when analyze is off.
class AnalyzeIter : public FrameIter {
 public:
  AnalyzeIter(const PhysOp* op, std::unique_ptr<FrameIter> inner)
      : op_(op), inner_(std::move(inner)) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    if (ctx->op_actuals == nullptr) return inner_->Open(frame, ctx);
    OpActual& a = ctx->op_actuals->At(op_);
    ++a.loops;
    const double t0 = ctx->analyze_clock->NowMs();
    Status st = inner_->Open(frame, ctx);
    a.time_ms += ctx->analyze_clock->NowMs() - t0;
    return st;
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    if (ctx->op_actuals == nullptr) return inner_->Next(frame, ctx);
    OpActual& a = ctx->op_actuals->At(op_);
    const double t0 = ctx->analyze_clock->NowMs();
    Result<bool> r = inner_->Next(frame, ctx);
    a.time_ms += ctx->analyze_clock->NowMs() - t0;
    if (r.ok() && r.value()) ++a.rows;
    return r;
  }

 private:
  const PhysOp* op_;
  std::unique_ptr<FrameIter> inner_;
};

std::unique_ptr<FrameIter> Analyzed(bool analyze, const PhysOp* op,
                                    std::unique_ptr<FrameIter> iter) {
  if (!analyze || iter == nullptr) return iter;
  return std::make_unique<AnalyzeIter>(op, std::move(iter));
}

}  // namespace

std::unique_ptr<FrameIter> BuildIter(const PhysOp* op, bool analyze,
                                     ExecContext* ctx, bool allow_batch) {
  std::unique_ptr<FrameIter> iter;
  switch (op->kind) {
    case PhysOp::Kind::kTableScan:
      iter = std::make_unique<TableScanIter>(op);
      break;
    case PhysOp::Kind::kIndexRange:
      iter = std::make_unique<IndexRangeIter>(op);
      break;
    case PhysOp::Kind::kIndexLookup:
      iter = std::make_unique<IndexLookupIter>(op);
      break;
    case PhysOp::Kind::kDerivedScan:
      iter = std::make_unique<DerivedScanIter>(op);
      break;
    case PhysOp::Kind::kFilter:
      iter = std::make_unique<FilterIter>(
          op, ChildIter(op->child.get(), analyze, ctx, allow_batch));
      break;
    case PhysOp::Kind::kNLJoin: {
      // The right side is re-opened per left row; semi/anti stop draining
      // it at the first match, so a batch graft there would overcharge the
      // scan budget and skew actuals.
      const JoinType jt = op->join_type;
      const bool right_allow =
          allow_batch && (jt == JoinType::kInner || jt == JoinType::kCross ||
                          jt == JoinType::kLeft);
      iter = std::make_unique<NLJoinIter>(
          op, ChildIter(op->child.get(), analyze, ctx, allow_batch),
          ChildIter(op->right.get(), analyze, ctx, right_allow));
      break;
    }
    case PhysOp::Kind::kHashJoin: {
      // The build side is always drained fully (FillHashJoinState), so it
      // may run batched regardless of how the consumer drains the join.
      const bool build_is_left = (op->join_type == JoinType::kInner ||
                                  op->join_type == JoinType::kCross);
      iter = std::make_unique<HashJoinIter>(
          op,
          ChildIter(op->child.get(), analyze, ctx,
                    build_is_left ? true : allow_batch),
          ChildIter(op->right.get(), analyze, ctx,
                    build_is_left ? allow_batch : true));
      break;
    }
  }
  return Analyzed(analyze, op, std::move(iter));
}

std::unique_ptr<FrameIter> ChildIter(const PhysOp* op, bool analyze,
                                     ExecContext* ctx, bool allow_batch) {
  if (allow_batch) {
    std::unique_ptr<FrameIter> adapter = MakeBatchIterAdapter(op, ctx);
    if (adapter != nullptr) return adapter;
  }
  return BuildIter(op, analyze, ctx, allow_batch);
}

namespace {

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// One aggregate accumulator (SUM/COUNT/AVG/MIN/MAX/STDDEV, with DISTINCT).
/// Fully mergeable: two partial states over disjoint row sets combine into
/// the state of the union (DISTINCT via set union, STDDEV via sum/sumsq),
/// which is what lets the parallel executor aggregate per morsel.
struct Accum {
  int64_t count = 0;
  int64_t isum = 0;
  double sum = 0.0;
  double sumsq = 0.0;
  bool int_only = true;
  Value min_v, max_v;
  std::set<Value> distinct;

  void Update(const Expr& agg, const Value& v) {
    if (agg.agg_func == AggFunc::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    if (agg.agg_distinct) {
      distinct.insert(v);
      return;
    }
    Add(v);
  }

  void Add(const Value& v) {
    ++count;
    if (v.kind() == Value::Kind::kInt) {
      isum += v.AsInt();
    } else {
      int_only = false;
    }
    double d = v.AsDouble();
    sum += d;
    sumsq += d * d;
    if (min_v.is_null() || Value::Compare(v, min_v) < 0) min_v = v;
    if (max_v.is_null() || Value::Compare(v, max_v) > 0) max_v = v;
  }

  /// Folds another partial state (over disjoint input rows) into this one.
  void Merge(const Accum& o) {
    count += o.count;
    isum += o.isum;
    sum += o.sum;
    sumsq += o.sumsq;
    int_only = int_only && o.int_only;
    if (!o.min_v.is_null() &&
        (min_v.is_null() || Value::Compare(o.min_v, min_v) < 0)) {
      min_v = o.min_v;
    }
    if (!o.max_v.is_null() &&
        (max_v.is_null() || Value::Compare(o.max_v, max_v) > 0)) {
      max_v = o.max_v;
    }
    distinct.insert(o.distinct.begin(), o.distinct.end());
  }

  Value Finalize(const Expr& agg) {
    if (agg.agg_distinct) {
      // Fold the distinct set through a plain accumulator.
      Accum folded;
      for (const Value& v : distinct) folded.Add(v);
      Expr plain;
      plain.kind = Expr::Kind::kAgg;
      plain.agg_func = agg.agg_func;
      return folded.Finalize(plain);
    }
    switch (agg.agg_func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return int_only ? Value::Int(isum) : Value::Double(sum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return min_v;
      case AggFunc::kMax:
        return max_v;
      case AggFunc::kStddev: {
        if (count == 0) return Value::Null();
        double n = static_cast<double>(count);
        double var = sumsq / n - (sum / n) * (sum / n);
        return Value::Double(std::sqrt(std::max(var, 0.0)));
      }
    }
    return Value::Null();
  }
};

/// A finished group, ready for HAVING/ORDER BY/projection.
struct Group {
  Row key;
  Row agg_values;
  OwnedFrame rep;  ///< representative input frame
};

int CompareRows(const Row& a, const Row& b,
                const std::vector<bool>* ascending = nullptr) {
  for (size_t i = 0; i < a.size(); ++i) {
    int c = Value::Compare(a[i], b[i]);
    // NULLs sort first on ASC (MySQL semantics); flip for DESC.
    if (c != 0) {
      bool asc = ascending == nullptr || (*ascending)[i];
      return asc ? c : -c;
    }
  }
  return 0;
}

/// Hash-aggregation state: groups in first-encounter order plus their
/// accumulators. The serial path runs one instance over all rows; the
/// parallel path runs one per morsel and merges the partials in morsel
/// order, which reproduces the serial group order and representative rows
/// exactly regardless of worker scheduling.
class GroupByState {
 public:
  void Init(const BlockPlan* plan) { plan_ = plan; }

  Status Consume(const Frame& f, ExecContext* ctx) {
    Row key;
    key.reserve(plan_->group_exprs.size());
    for (const Expr* g : plan_->group_exprs) {
      TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, f, nullptr, ctx));
      key.push_back(std::move(v));
    }
    uint64_t h = HashRow(key);
    size_t idx = Find(h, key);
    if (idx == SIZE_MAX) {
      idx = groups_.size();
      index_[h].push_back(idx);
      Group g;
      g.key = std::move(key);
      g.rep = OwnedFrame(f);
      groups_.push_back(std::move(g));
      accums_.emplace_back(plan_->agg_exprs.size());
    }
    for (size_t i = 0; i < plan_->agg_exprs.size(); ++i) {
      const Expr& agg = *plan_->agg_exprs[i];
      Value v;
      if (agg.agg_func != AggFunc::kCountStar) {
        TAURUS_ASSIGN_OR_RETURN(v,
                                EvalExpr(*agg.children[0], f, nullptr, ctx));
      }
      accums_[idx][i].Update(agg, v);
    }
    return Status::OK();
  }

  /// Vectorized Consume: group keys and aggregate arguments are evaluated
  /// as whole vectors over the batch, then folded per selected row in
  /// selection order — same groups, same encounter order, same
  /// representative frames as row-at-a-time consumption.
  Status ConsumeBatch(const Batch& b, ExecContext* ctx) {
    const size_t n = b.sel.size();
    const size_t ng = plan_->group_exprs.size();
    const size_t na = plan_->agg_exprs.size();
    std::vector<std::vector<Value>> gcols(ng);
    for (size_t g = 0; g < ng; ++g) {
      TAURUS_RETURN_IF_ERROR(
          EvalExprBatch(*plan_->group_exprs[g], b, ctx, &gcols[g]));
    }
    std::vector<std::vector<Value>> acols(na);
    for (size_t a = 0; a < na; ++a) {
      const Expr& agg = *plan_->agg_exprs[a];
      if (agg.agg_func == AggFunc::kCountStar) continue;
      TAURUS_RETURN_IF_ERROR(EvalExprBatch(*agg.children[0], b, ctx, &acols[a]));
    }
    Frame scratch;
    for (size_t i = 0; i < n; ++i) {
      Row key;
      key.reserve(ng);
      for (size_t g = 0; g < ng; ++g) key.push_back(gcols[g][i]);
      uint64_t h = HashRow(key);
      size_t idx = Find(h, key);
      if (idx == SIZE_MAX) {
        idx = groups_.size();
        index_[h].push_back(idx);
        Group grp;
        grp.key = std::move(key);
        if (scratch.empty()) scratch = *b.base;
        b.FillFrame(b.sel[i], &scratch);
        grp.rep = OwnedFrame(scratch);
        groups_.push_back(std::move(grp));
        accums_.emplace_back(na);
      }
      for (size_t a = 0; a < na; ++a) {
        const Expr& agg = *plan_->agg_exprs[a];
        accums_[idx][a].Update(
            agg, agg.agg_func == AggFunc::kCountStar ? Value() : acols[a][i]);
      }
    }
    return Status::OK();
  }

  /// Merges a LATER partial state into this one: existing groups fold their
  /// accumulators; new groups append in `o`'s own encounter order. Merging
  /// morsel partials in morsel order therefore yields exactly the serial
  /// encounter order (and the serial representative frame per group).
  void Merge(GroupByState&& o) {
    for (size_t gi = 0; gi < o.groups_.size(); ++gi) {
      uint64_t h = HashRow(o.groups_[gi].key);
      size_t idx = Find(h, o.groups_[gi].key);
      if (idx == SIZE_MAX) {
        idx = groups_.size();
        index_[h].push_back(idx);
        groups_.push_back(std::move(o.groups_[gi]));
        accums_.push_back(std::move(o.accums_[gi]));
      } else {
        for (size_t a = 0; a < accums_[idx].size(); ++a) {
          accums_[idx][a].Merge(o.accums_[gi][a]);
        }
      }
    }
  }

  bool empty() const { return groups_.empty(); }

  /// Scalar aggregation over empty input still yields one group.
  void AddEmptyScalarGroup(const Frame& frame) {
    Group g;
    g.rep = OwnedFrame(frame);
    groups_.push_back(std::move(g));
    accums_.emplace_back(plan_->agg_exprs.size());
  }

  /// Fills each group's agg_values and hands the groups over.
  std::vector<Group> Finalize() {
    for (size_t i = 0; i < groups_.size(); ++i) {
      groups_[i].agg_values.reserve(plan_->agg_exprs.size());
      for (size_t a = 0; a < plan_->agg_exprs.size(); ++a) {
        groups_[i].agg_values.push_back(
            accums_[i][a].Finalize(*plan_->agg_exprs[a]));
      }
    }
    return std::move(groups_);
  }

 private:
  size_t Find(uint64_t h, const Row& key) const {
    auto it = index_.find(h);
    if (it == index_.end()) return SIZE_MAX;
    for (size_t cand : it->second) {
      if (CompareRows(groups_[cand].key, key) == 0) return cand;
    }
    return SIZE_MAX;
  }

  const BlockPlan* plan_ = nullptr;
  std::vector<Group> groups_;
  std::unordered_map<uint64_t, std::vector<size_t>> index_;
  std::vector<std::vector<Accum>> accums_;
};

/// A buffered pre-sort row: its ORDER BY key plus the captured frame.
struct SortUnit {
  Row sort_key;
  OwnedFrame frame;
};

// ---------------------------------------------------------------------------
// Pipeline finish stages (shared by the serial and parallel paths)
// ---------------------------------------------------------------------------

/// HAVING, ORDER BY keys, projection and sort over finished groups.
Status FinishAgg(const BlockPlan& plan, std::vector<Group> groups,
                 ExecContext* ctx, bool has_order, std::vector<Row>* output) {
  struct OutUnit {
    Row sort_key;
    Row row;
  };
  std::vector<OutUnit> units;
  for (Group& g : groups) {
    Frame rep_view = g.rep.View();
    AggContext agg_ctx;
    agg_ctx.agg_exprs = &plan.agg_exprs;
    agg_ctx.agg_values = &g.agg_values;
    agg_ctx.group_exprs = &plan.group_exprs;
    agg_ctx.group_values = &g.key;
    if (plan.having != nullptr) {
      TAURUS_ASSIGN_OR_RETURN(
          bool ok, EvalPredicate(*plan.having, rep_view, &agg_ctx, ctx));
      if (!ok) continue;
    }
    OutUnit unit;
    if (has_order) {
      for (const auto& [e, asc] : plan.order_keys) {
        TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, rep_view, &agg_ctx, ctx));
        unit.sort_key.push_back(std::move(v));
      }
    }
    for (const Expr* p : plan.projections) {
      TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, rep_view, &agg_ctx, ctx));
      unit.row.push_back(std::move(v));
    }
    units.push_back(std::move(unit));
  }
  if (has_order) {
    std::vector<bool> asc;
    for (const auto& [e, a] : plan.order_keys) asc.push_back(a);
    std::stable_sort(units.begin(), units.end(),
                     [&](const OutUnit& a, const OutUnit& b) {
                       return CompareRows(a.sort_key, b.sort_key, &asc) < 0;
                     });
  }
  for (OutUnit& u : units) output->push_back(std::move(u.row));
  return Status::OK();
}

/// Sorts buffered rows by their keys and projects them.
Status FinishSort(const BlockPlan& plan, std::vector<SortUnit> units,
                  ExecContext* ctx, std::vector<Row>* output) {
  std::vector<bool> asc;
  for (const auto& [e, a] : plan.order_keys) asc.push_back(a);
  std::stable_sort(units.begin(), units.end(),
                   [&](const SortUnit& a, const SortUnit& b) {
                     return CompareRows(a.sort_key, b.sort_key, &asc) < 0;
                   });
  for (SortUnit& u : units) {
    Frame view = u.frame.View();
    Row row;
    for (const Expr* p : plan.projections) {
      TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, view, nullptr, ctx));
      row.push_back(std::move(v));
    }
    output->push_back(std::move(row));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel pipeline (see DESIGN.md section 8)
// ---------------------------------------------------------------------------

/// What the per-worker iterator chains feed, per pipeline shape.
enum class PipeMode { kAgg, kSort, kPlain };

}  // namespace

/// The probe/driving child an eligible pipeline descends through.
const PhysOp* DrivingChild(const PhysOp& op) {
  switch (op.kind) {
    case PhysOp::Kind::kFilter:
      return op.child.get();
    case PhysOp::Kind::kNLJoin:
      return op.child.get();
    case PhysOp::Kind::kHashJoin: {
      bool build_is_left = (op.join_type == JoinType::kInner ||
                            op.join_type == JoinType::kCross);
      return build_is_left ? op.right.get() : op.child.get();
    }
    default:
      return nullptr;
  }
}

/// The driving TableScan of an eligible pipeline (refinement guarantees
/// one exists; returns null defensively otherwise).
const PhysOp* FindDriverScan(const PhysOp* op) {
  while (op != nullptr) {
    if (op->kind == PhysOp::Kind::kTableScan) return op;
    op = DrivingChild(*op);
  }
  return nullptr;
}

namespace {

Status PrebuildHashStates(const PhysOp* root, Frame* frame, ExecContext* ctx,
                          PipelineShared* shared) {
  for (const PhysOp* cur = root; cur != nullptr; cur = DrivingChild(*cur)) {
    if (cur->kind != PhysOp::Kind::kHashJoin) continue;
    HashJoinLayout layout = MakeHashJoinLayout(*cur);
    const PhysOp* build_child =
        layout.build_is_left ? cur->child.get() : cur->right.get();
    // Build sides are drained fully, so they may run batched.
    std::unique_ptr<FrameIter> build = ChildIter(
        build_child, ctx->op_actuals != nullptr, ctx, /*allow_batch=*/true);
    TAURUS_RETURN_IF_ERROR(FillHashJoinState(
        *cur, layout, build.get(), frame, ctx, &shared->hash_states[cur]));
  }
  return Status::OK();
}

/// A worker-private clone of the driving iterator chain: hash joins probe
/// the shared states, NL-join inner sides are private (re-opened per driver
/// row, as in the serial executor), and the driver scan is returned through
/// `driver_out` so the worker can reposition it per morsel.
std::unique_ptr<FrameIter> BuildWorkerChain(const PhysOp* op,
                                            const PipelineShared& shared,
                                            TableScanIter** driver_out,
                                            bool analyze, ExecContext* ctx) {
  switch (op->kind) {
    case PhysOp::Kind::kTableScan: {
      auto scan = std::make_unique<TableScanIter>(op);
      // Capture the raw driver before any analyze wrapping: the worker
      // repositions it per morsel through this pointer. Under analyze the
      // driver's loops therefore count morsels processed (summed shard-wise).
      *driver_out = scan.get();
      return Analyzed(analyze, op, std::move(scan));
    }
    case PhysOp::Kind::kFilter:
      return Analyzed(analyze, op,
                      std::make_unique<FilterIter>(
                          op, BuildWorkerChain(op->child.get(), shared,
                                               driver_out, analyze, ctx)));
    case PhysOp::Kind::kNLJoin: {
      const JoinType jt = op->join_type;
      const bool right_allow = jt == JoinType::kInner ||
                               jt == JoinType::kCross || jt == JoinType::kLeft;
      return Analyzed(
          analyze, op,
          std::make_unique<NLJoinIter>(
              op,
              BuildWorkerChain(op->child.get(), shared, driver_out, analyze,
                               ctx),
              ChildIter(op->right.get(), analyze, ctx, right_allow)));
    }
    case PhysOp::Kind::kHashJoin: {
      auto it = shared.hash_states.find(op);
      if (it == shared.hash_states.end()) return nullptr;
      auto probe = BuildWorkerChain(DrivingChild(*op), shared, driver_out,
                                    analyze, ctx);
      if (probe == nullptr) return nullptr;
      return Analyzed(analyze, op,
                      std::make_unique<HashJoinIter>(op, std::move(probe),
                                                     &it->second));
    }
    default:
      return nullptr;  // not a driving-path operator
  }
}

/// Per-morsel stage-A results, merged on the main thread in morsel order.
struct ParallelOut {
  bool engaged = false;
  GroupByState agg;
  std::vector<SortUnit> sort_units;
  std::vector<Row> rows;
};

/// One worker's processing of one morsel's pipeline output.
Status ConsumeMorsel(PipeMode mode, const BlockPlan& plan, FrameIter* chain,
                     Frame* frame, ExecContext* shard, GroupByState* agg,
                     std::vector<SortUnit>* sort_units,
                     std::vector<Row>* rows) {
  while (true) {
    TAURUS_ASSIGN_OR_RETURN(bool has, chain->Next(frame, shard));
    if (!has) return Status::OK();
    switch (mode) {
      case PipeMode::kAgg:
        TAURUS_RETURN_IF_ERROR(agg->Consume(*frame, shard));
        break;
      case PipeMode::kSort: {
        SortUnit u;
        for (const auto& [e, a] : plan.order_keys) {
          TAURUS_ASSIGN_OR_RETURN(Value v,
                                  EvalExpr(*e, *frame, nullptr, shard));
          u.sort_key.push_back(std::move(v));
        }
        u.frame = OwnedFrame(*frame);
        sort_units->push_back(std::move(u));
        break;
      }
      case PipeMode::kPlain: {
        Row row;
        for (const Expr* p : plan.projections) {
          TAURUS_ASSIGN_OR_RETURN(Value v,
                                  EvalExpr(*p, *frame, nullptr, shard));
          row.push_back(std::move(v));
        }
        rows->push_back(std::move(row));
        break;
      }
    }
  }
}

/// Batch-mode ConsumeMorsel: drains a batch chain into the same per-shape
/// sinks, evaluating order keys / projections as whole vectors. Row order
/// (selection order) matches the Volcano chain's emission order exactly, so
/// groups, sort stability and plain output are bit-identical.
Status ConsumeBatches(PipeMode mode, const BlockPlan& plan, BatchOp* chain,
                      ExecContext* ctx, GroupByState* agg,
                      std::vector<SortUnit>* sort_units,
                      std::vector<Row>* rows) {
  Frame scratch;
  while (true) {
    TAURUS_ASSIGN_OR_RETURN(Batch* b, chain->NextBatch(ctx));
    if (b == nullptr) return Status::OK();
    ++ctx->batches;
    ctx->batch_rows += static_cast<int64_t>(b->sel.size());
    switch (mode) {
      case PipeMode::kAgg:
        TAURUS_RETURN_IF_ERROR(agg->ConsumeBatch(*b, ctx));
        break;
      case PipeMode::kSort: {
        const size_t nk = plan.order_keys.size();
        std::vector<std::vector<Value>> kcols(nk);
        for (size_t k = 0; k < nk; ++k) {
          TAURUS_RETURN_IF_ERROR(
              EvalExprBatch(*plan.order_keys[k].first, *b, ctx, &kcols[k]));
        }
        if (scratch.empty()) scratch = *b->base;
        for (size_t i = 0; i < b->sel.size(); ++i) {
          SortUnit u;
          u.sort_key.reserve(nk);
          for (size_t k = 0; k < nk; ++k) {
            u.sort_key.push_back(std::move(kcols[k][i]));
          }
          b->FillFrame(b->sel[i], &scratch);
          u.frame = OwnedFrame(scratch);
          sort_units->push_back(std::move(u));
        }
        break;
      }
      case PipeMode::kPlain: {
        const size_t np = plan.projections.size();
        std::vector<std::vector<Value>> pcols(np);
        for (size_t p = 0; p < np; ++p) {
          TAURUS_RETURN_IF_ERROR(
              EvalExprBatch(*plan.projections[p], *b, ctx, &pcols[p]));
        }
        for (size_t i = 0; i < b->sel.size(); ++i) {
          Row row;
          row.reserve(np);
          for (size_t p = 0; p < np; ++p) row.push_back(std::move(pcols[p][i]));
          rows->push_back(std::move(row));
        }
        break;
      }
    }
  }
}

/// Attempts to run the block's driving pipeline morsel-parallel. Returns
/// false when a runtime gate keeps it serial (no pool, small driver table,
/// DOP < 2, pool busy); true with `out->engaged` set when the parallel
/// pipeline ran. Errors from workers (including deterministic budget kills
/// through the shared atomic row counter) propagate with the smallest
/// morsel index winning, so failures are reproducible too.
Result<bool> TryParallelPipeline(const BlockPlan& plan, const Frame& outer,
                                 ExecContext* ctx, PipeMode mode,
                                 ParallelOut* out) {
  const PhysOp* driver = FindDriverScan(plan.join_root.get());
  if (driver == nullptr) return false;
  const TableData* data = ctx->storage->Get(driver->leaf->table->id);
  if (data == nullptr) return false;
  const int64_t total = static_cast<int64_t>(data->NumRows());
  if (total < ctx->parallel_min_driver_rows) return false;
  const int64_t morsel = std::max<int64_t>(1, ctx->morsel_rows);
  const int64_t num_morsels = (total + morsel - 1) / morsel;
  const int dop = static_cast<int>(
      std::min<int64_t>(ctx->parallel_workers, num_morsels));
  if (dop < 2) return false;

  // Build sides run once, serially, with the root context (they may hold
  // derived tables, subqueries, anything — the workers never re-enter them).
  PipelineShared shared;
  {
    Frame build_frame = outer;
    TAURUS_RETURN_IF_ERROR(
        PrebuildHashStates(plan.join_root.get(), &build_frame, ctx, &shared));
  }

  // Per-morsel output slots: workers write disjoint indices, the main
  // thread reads only after the pool joins, so no locking is needed and
  // the merged result is independent of scheduling.
  const size_t nm = static_cast<size_t>(num_morsels);
  std::vector<GroupByState> agg_parts(mode == PipeMode::kAgg ? nm : 0);
  for (GroupByState& s : agg_parts) s.Init(&plan);
  std::vector<std::vector<SortUnit>> sort_parts(
      mode == PipeMode::kSort ? nm : 0);
  std::vector<std::vector<Row>> row_parts(mode == PipeMode::kPlain ? nm : 0);
  std::vector<Status> morsel_status(nm, Status::OK());
  std::vector<Status> worker_status(static_cast<size_t>(dop), Status::OK());
  std::unique_ptr<ExecContext[]> shards(new ExecContext[dop]);

  std::atomic<int64_t> next_morsel{0};
  std::atomic<bool> abort{false};
  std::atomic<bool> used_batch{false};

  // Executor profiling (DESIGN.md section 15): each worker times its own
  // slot — no synchronization — and the main thread computes idle time
  // against the pipeline wall after the pool joins.
  const bool profiled =
      ctx->exec_profile != nullptr && ctx->profile_clock != nullptr;
  std::vector<WorkerProfile> worker_profiles(
      profiled ? static_cast<size_t>(dop) : 0);
  const Clock* profile_clock = ctx->profile_clock;

  auto worker = [&](int w) {
    ExecContext* shard = &shards[w];
    ctx->InitShard(shard);
    // Batch-eligible pipelines run each worker's morsels through a private
    // vectorized chain probing the same shared hash states. Any worker that
    // cannot build one (defensive) falls back to the Volcano clone — both
    // consume morsels from the same queue with identical per-morsel output.
    BatchChain bchain;
    if (plan.batch_eligible) {
      bchain = BuildBatchChain(plan.join_root.get(), shard, &shared);
      if (bchain.root == nullptr || bchain.driver == nullptr ||
          bchain.driver->Op() != driver) {
        bchain.root.reset();
      }
    }
    TableScanIter* scan = nullptr;
    std::unique_ptr<FrameIter> chain;
    if (bchain.root != nullptr) {
      used_batch.store(true, std::memory_order_relaxed);
    } else {
      chain = BuildWorkerChain(plan.join_root.get(), shared, &scan,
                               shard->op_actuals != nullptr, shard);
      if (chain == nullptr || scan == nullptr || scan->Op() != driver) {
        worker_status[static_cast<size_t>(w)] =
            Status::Internal("worker chain build failed");
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
    Frame frame = outer;
    WorkerProfile* profile =
        profiled ? &worker_profiles[static_cast<size_t>(w)] : nullptr;
    while (!abort.load(std::memory_order_relaxed)) {
      int64_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) break;
      const size_t begin = static_cast<size_t>(m * morsel);
      const size_t end = static_cast<size_t>(std::min(total, (m + 1) * morsel));
      const size_t mi = static_cast<size_t>(m);
      const double morsel_start =
          profile != nullptr ? profile_clock->NowMs() : 0.0;
      Status st;
      if (bchain.root != nullptr) {
        bchain.driver->SetRange(begin, end);
        st = bchain.root->Open(&frame, shard);
        if (st.ok()) {
          st = ConsumeBatches(
              mode, plan, bchain.root.get(), shard,
              mode == PipeMode::kAgg ? &agg_parts[mi] : nullptr,
              mode == PipeMode::kSort ? &sort_parts[mi] : nullptr,
              mode == PipeMode::kPlain ? &row_parts[mi] : nullptr);
        }
      } else {
        scan->SetRange(begin, end);
        st = chain->Open(&frame, shard);
        if (st.ok()) {
          st = ConsumeMorsel(
              mode, plan, chain.get(), &frame, shard,
              mode == PipeMode::kAgg ? &agg_parts[mi] : nullptr,
              mode == PipeMode::kSort ? &sort_parts[mi] : nullptr,
              mode == PipeMode::kPlain ? &row_parts[mi] : nullptr);
        }
      }
      if (profile != nullptr) {
        profile->busy_ms += profile_clock->NowMs() - morsel_start;
        ++profile->morsels;
        // Driver rows processed this morsel, attributed to the chain that
        // consumed them (batch vs Volcano fallback).
        const int64_t driver_rows =
            static_cast<int64_t>(end) - static_cast<int64_t>(begin);
        (bchain.root != nullptr ? profile->batch_rows
                                : profile->volcano_rows) += driver_rows;
      }
      if (!st.ok()) {
        morsel_status[static_cast<size_t>(m)] = std::move(st);
        abort.store(true, std::memory_order_relaxed);
        break;
      }
    }
  };

  const double pipeline_start = profiled ? profile_clock->NowMs() : 0.0;
  if (!ctx->pool->TryRun(dop, worker)) return false;  // pool busy: go serial
  if (profiled) {
    // Per-worker idle = pipeline wall minus that worker's busy time: queue
    // hand-off plus waiting for the slowest peer after draining the queue.
    const double wall = profile_clock->NowMs() - pipeline_start;
    for (WorkerProfile& wp : worker_profiles) {
      wp.idle_ms = std::max(0.0, wall - wp.busy_ms);
    }
    ctx->exec_profile->MergePipeline(worker_profiles);
  }

  for (int w = 0; w < dop; ++w) ctx->MergeShard(shards[w]);
  // First failing morsel (by morsel index, not completion order) wins.
  for (const Status& st : morsel_status) {
    if (!st.ok()) return st;
  }
  for (const Status& st : worker_status) {
    if (!st.ok()) return st;
  }

  switch (mode) {
    case PipeMode::kAgg: {
      out->agg.Init(&plan);
      bool first = true;
      for (GroupByState& part : agg_parts) {
        if (first) {
          out->agg = std::move(part);
          first = false;
        } else {
          out->agg.Merge(std::move(part));
        }
      }
      break;
    }
    case PipeMode::kSort:
      for (std::vector<SortUnit>& part : sort_parts) {
        for (SortUnit& u : part) out->sort_units.push_back(std::move(u));
      }
      break;
    case PipeMode::kPlain:
      for (std::vector<Row>& part : row_parts) {
        for (Row& r : part) out->rows.push_back(std::move(r));
      }
      break;
  }

  ++ctx->parallel_pipelines;
  if (used_batch.load(std::memory_order_relaxed)) ++ctx->batch_pipelines;
  ctx->max_workers_used = std::max(ctx->max_workers_used, dop);
  out->engaged = true;
  return true;
}

// ---------------------------------------------------------------------------
// Block execution
// ---------------------------------------------------------------------------

Result<std::vector<Row>> ExecuteSingle(const BlockPlan& plan,
                                       const Frame& outer, ExecContext* ctx,
                                       bool apply_order_limit) {
  Frame frame = outer;
  std::vector<Row> output;

  // Block-level actuals (rows after agg/sort/distinct/limit) keyed by the
  // BlockPlan itself; per-operator actuals come from the AnalyzeIter wraps.
  const bool analyze = ctx->op_actuals != nullptr;
  const double analyze_t0 = analyze ? ctx->analyze_clock->NowMs() : 0.0;
  auto record_block = [&](const std::vector<Row>& rows) {
    OpActual& a = ctx->op_actuals->At(&plan);
    ++a.loops;
    a.rows += static_cast<int64_t>(rows.size());
    a.time_ms += ctx->analyze_clock->NowMs() - analyze_t0;
  };

  const bool has_order = apply_order_limit && !plan.order_keys.empty() &&
                         !plan.order_satisfied;
  const bool has_limit = apply_order_limit && plan.limit >= 0;

  // ---- No FROM clause: one conceptual row. ----
  if (plan.join_root == nullptr && plan.agg_mode == AggMode::kNone) {
    Row row;
    for (const Expr* p : plan.projections) {
      TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, frame, nullptr, ctx));
      row.push_back(std::move(v));
    }
    output.push_back(std::move(row));
    if (analyze) record_block(output);
    return output;
  }

  const PipeMode mode = plan.agg_mode != AggMode::kNone
                            ? PipeMode::kAgg
                            : (has_order ? PipeMode::kSort : PipeMode::kPlain);

  // ---- Parallel attempt (stage A via the morsel-driven pipeline). ----
  ParallelOut par;
  if (plan.join_root != nullptr && plan.parallel_eligible &&
      ctx->pool != nullptr && !ctx->is_worker_shard &&
      !(mode == PipeMode::kPlain && has_limit && !plan.distinct)) {
    TAURUS_ASSIGN_OR_RETURN(bool engaged,
                            TryParallelPipeline(plan, outer, ctx, mode, &par));
    (void)engaged;
  }

  // ---- Serial pipeline: vectorized when anything on the driving chain
  // speaks batches (the whole chain, or a native prefix over a
  // Frame->Batch source); otherwise the Volcano chain, which may still
  // graft batch segments behind adapters (hash-join build sides, NL-join
  // inner sides). Plain blocks with a row limit drain lazily, so batching
  // would overrun the scan budget — they stay row-at-a-time.
  const bool allow_batch_top =
      !(mode == PipeMode::kPlain && has_limit && !plan.distinct);
  std::unique_ptr<FrameIter> iter;
  BatchChain bchain;
  if (plan.join_root != nullptr && !par.engaged) {
    if (allow_batch_top) {
      bchain = BuildBatchChain(plan.join_root.get(), ctx, nullptr);
      if (bchain.root != nullptr && bchain.native_ops == 0) bchain.root.reset();
    }
    if (bchain.root != nullptr) {
      ++ctx->batch_pipelines;
      TAURUS_RETURN_IF_ERROR(bchain.root->Open(&frame, ctx));
    } else {
      iter = BuildIter(plan.join_root.get(), analyze, ctx, allow_batch_top);
      TAURUS_RETURN_IF_ERROR(iter->Open(&frame, ctx));
    }
  }

  if (mode == PipeMode::kAgg) {
    // ---- Aggregation path (hash or sort+stream; same results). ----
    GroupByState state;
    if (par.engaged) {
      state = std::move(par.agg);
    } else {
      state.Init(&plan);
      if (bchain.root != nullptr) {
        TAURUS_RETURN_IF_ERROR(ConsumeBatches(mode, plan, bchain.root.get(),
                                              ctx, &state, nullptr, nullptr));
      } else if (iter != nullptr) {
        while (true) {
          TAURUS_ASSIGN_OR_RETURN(bool has, iter->Next(&frame, ctx));
          if (!has) break;
          TAURUS_RETURN_IF_ERROR(state.Consume(frame, ctx));
        }
      } else {
        TAURUS_RETURN_IF_ERROR(state.Consume(frame, ctx));
      }
    }
    if (state.empty() && plan.group_exprs.empty()) {
      state.AddEmptyScalarGroup(frame);
    }
    TAURUS_RETURN_IF_ERROR(
        FinishAgg(plan, state.Finalize(), ctx, has_order, &output));
  } else if (mode == PipeMode::kSort) {
    // ---- Materialize, sort, project. ----
    std::vector<SortUnit> units;
    if (par.engaged) {
      units = std::move(par.sort_units);
    } else if (bchain.root != nullptr) {
      TAURUS_RETURN_IF_ERROR(ConsumeBatches(mode, plan, bchain.root.get(), ctx,
                                            nullptr, &units, nullptr));
    } else {
      while (iter != nullptr) {
        TAURUS_ASSIGN_OR_RETURN(bool has, iter->Next(&frame, ctx));
        if (!has) break;
        SortUnit u;
        for (const auto& [e, a] : plan.order_keys) {
          TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, frame, nullptr, ctx));
          u.sort_key.push_back(std::move(v));
        }
        u.frame = OwnedFrame(frame);
        units.push_back(std::move(u));
      }
    }
    TAURUS_RETURN_IF_ERROR(FinishSort(plan, std::move(units), ctx, &output));
  } else if (par.engaged) {
    output = std::move(par.rows);
  } else if (bchain.root != nullptr) {
    // ---- Streaming projection, vectorized (full drain: no LIMIT here
    // unless DISTINCT forces one anyway). ----
    TAURUS_RETURN_IF_ERROR(ConsumeBatches(mode, plan, bchain.root.get(), ctx,
                                          nullptr, nullptr, &output));
  } else {
    // ---- Streaming projection with early LIMIT exit. ----
    int64_t want = has_limit ? plan.offset + plan.limit : -1;
    while (iter != nullptr) {
      if (want >= 0 && static_cast<int64_t>(output.size()) >= want &&
          !plan.distinct) {
        break;
      }
      TAURUS_ASSIGN_OR_RETURN(bool has, iter->Next(&frame, ctx));
      if (!has) break;
      Row row;
      for (const Expr* p : plan.projections) {
        TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, frame, nullptr, ctx));
        row.push_back(std::move(v));
      }
      output.push_back(std::move(row));
    }
  }

  // DISTINCT.
  if (plan.distinct) {
    std::vector<Row> dedup;
    std::unordered_map<uint64_t, std::vector<size_t>> seen;
    for (Row& r : output) {
      uint64_t h = HashRow(r);
      bool dup = false;
      for (size_t idx : seen[h]) {
        if (CompareRows(dedup[idx], r) == 0) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        seen[h].push_back(dedup.size());
        dedup.push_back(std::move(r));
      }
    }
    output = std::move(dedup);
  }

  // OFFSET / LIMIT.
  if (apply_order_limit && (plan.offset > 0 || plan.limit >= 0)) {
    size_t begin = std::min(static_cast<size_t>(plan.offset), output.size());
    size_t end = plan.limit >= 0
                     ? std::min(begin + static_cast<size_t>(plan.limit),
                                output.size())
                     : output.size();
    std::vector<Row> window(std::make_move_iterator(output.begin() + begin),
                            std::make_move_iterator(output.begin() + end));
    output = std::move(window);
  }
  if (analyze) record_block(output);
  return output;
}

}  // namespace

Result<std::vector<Row>> ExecuteBlock(const BlockPlan& plan,
                                      const Frame& outer, ExecContext* ctx) {
  if (plan.union_arms.empty()) {
    return ExecuteSingle(plan, outer, ctx, /*apply_order_limit=*/true);
  }
  // UNION: run all arms without per-arm ordering, combine, then apply the
  // head block's ORDER BY (resolved to positions) and LIMIT.
  TAURUS_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      ExecuteSingle(plan, outer, ctx, /*apply_order_limit=*/false));
  for (const auto& arm : plan.union_arms) {
    TAURUS_ASSIGN_OR_RETURN(
        std::vector<Row> arm_rows,
        ExecuteSingle(*arm, outer, ctx, /*apply_order_limit=*/false));
    for (Row& r : arm_rows) rows.push_back(std::move(r));
  }
  if (!plan.union_all) {
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
    rows.erase(std::unique(rows.begin(), rows.end(),
                           [](const Row& a, const Row& b) {
                             return CompareRows(a, b) == 0;
                           }),
               rows.end());
  }
  if (!plan.union_order_positions.empty()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (const auto& [pos, asc] : plan.union_order_positions) {
                         int c = Value::Compare(a[static_cast<size_t>(pos)],
                                                b[static_cast<size_t>(pos)]);
                         if (c != 0) return asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
  }
  if (plan.offset > 0 || plan.limit >= 0) {
    size_t begin = std::min(static_cast<size_t>(plan.offset), rows.size());
    size_t end =
        plan.limit >= 0
            ? std::min(begin + static_cast<size_t>(plan.limit), rows.size())
            : rows.size();
    std::vector<Row> window(std::make_move_iterator(rows.begin() + begin),
                            std::make_move_iterator(rows.begin() + end));
    rows = std::move(window);
  }
  return rows;
}

Result<std::vector<Row>> ExecuteQuery(CompiledQuery* query,
                                      const Storage& storage,
                                      ExecContext* ctx_out) {
  ExecContext local;
  ExecContext* ctx = ctx_out != nullptr ? ctx_out : &local;
  ctx->storage = &storage;
  ctx->query = query;
  ctx->subplan_cache.clear();
  Frame outer(static_cast<size_t>(query->num_refs), nullptr);
  return ExecuteBlock(*query->root, outer, ctx);
}

}  // namespace taurus
