#ifndef TAURUS_EXEC_BATCH_H_
#define TAURUS_EXEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "exec/frame.h"

namespace taurus {

/// The unit of data flowing through the vectorized executor: a column-major
/// block of up to a few thousand Frame rows. Like a Frame, a Batch has one
/// slot per table-reference leaf (indexed by TableRef::ref_id); unlike a
/// Frame, an *active* slot holds a vector of row pointers — one per physical
/// batch position — so a whole block of rows moves per virtual call.
///
/// Row visibility is carried by an explicit selection vector: `sel` lists
/// the physical positions that are alive, in pipeline order. Filters shrink
/// `sel` in place without moving any row data (progressive selection shrink
/// = vectorized short-circuit AND); downstream operators iterate `sel`, not
/// [0, size). A null row pointer in an active slot means the slot is
/// NULL-extended for that row (outer-join semantics), exactly like a null
/// Frame slot.
///
/// Inactive slots fall through to `base`, the pipeline's outer-binding
/// frame, so correlated expressions evaluate against batches unchanged.
struct Batch {
  /// Per-slot row-pointer columns; only active slots are populated.
  std::vector<std::vector<const Row*>> cols;
  /// Which slots this pipeline fills (parallel to `cols`).
  std::vector<uint8_t> active;
  /// Selected physical positions, in pipeline row order.
  std::vector<uint32_t> sel;
  /// Physical rows filled in the active columns.
  size_t size = 0;
  /// Outer bindings for inactive slots (never null while executing).
  const Frame* base = nullptr;

  /// (Re)shapes the batch for a pipeline over `num_refs` leaves with the
  /// given outer bindings. Deactivates all slots; column capacity is kept
  /// when the shape is unchanged (morsel loops re-Open every morsel).
  void Reset(size_t num_refs, const Frame* base_frame) {
    if (cols.size() != num_refs) cols.assign(num_refs, {});
    active.assign(num_refs, 0);
    sel.clear();
    size = 0;
    base = base_frame;
  }

  /// Marks `ref` as produced by this pipeline.
  void Activate(int ref) { active[static_cast<size_t>(ref)] = 1; }

  size_t num_slots() const { return cols.size(); }

  /// Reconstitutes physical row `row` into `frame`: every active slot is
  /// overwritten (with null for NULL-extended rows); inactive slots keep
  /// whatever `frame` already holds (the outer bindings). Used by the
  /// Batch→Frame adapter and by per-row fallbacks (subquery expressions,
  /// sort/group representative capture).
  void FillFrame(uint32_t row, Frame* frame) const {
    for (size_t s = 0; s < cols.size(); ++s) {
      if (active[s] != 0) (*frame)[s] = cols[s][row];
    }
  }
};

}  // namespace taurus

#endif  // TAURUS_EXEC_BATCH_H_
