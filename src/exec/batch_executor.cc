#include "exec/batch_executor.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "exec/expr_eval.h"
#include "exec/vector_ops.h"
#include "types/value.h"

namespace taurus {
namespace {

/// Scoped actuals recorder for batch operators: same semantics as the
/// Volcano AnalyzeIter wrapper (inclusive wall time, one loop per Open,
/// one row per emitted selection entry), keyed by the same PhysOp address,
/// so EXPLAIN ANALYZE output is indistinguishable between the two engines.
class OpTimer {
 public:
  OpTimer(const PhysOp* op, ExecContext* ctx) {
    if (ctx->op_actuals != nullptr) {
      actual_ = &ctx->op_actuals->At(op);
      clock_ = ctx->analyze_clock;
      t0_ = clock_->NowMs();
    }
  }

  void RecordOpen() {
    if (actual_ == nullptr) return;
    ++actual_->loops;
    actual_->time_ms += clock_->NowMs() - t0_;
  }

  void RecordRows(int64_t rows) {
    if (actual_ == nullptr) return;
    actual_->rows += rows;
    actual_->time_ms += clock_->NowMs() - t0_;
  }

 private:
  OpActual* actual_ = nullptr;
  const Clock* clock_ = nullptr;
  double t0_ = 0.0;
};

/// Vectorized kFilter: pulls child batches and shrinks their selection in
/// place, looping past fully filtered blocks (NextBatch never returns an
/// empty selection).
class BatchFilter : public BatchOp {
 public:
  BatchFilter(const PhysOp* op, std::unique_ptr<BatchOp> child)
      : op_(op), child_(std::move(child)) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    OpTimer t(op_, ctx);
    TAURUS_RETURN_IF_ERROR(child_->Open(frame, ctx));
    t.RecordOpen();
    return Status::OK();
  }

  Result<Batch*> NextBatch(ExecContext* ctx) override {
    OpTimer t(op_, ctx);
    while (true) {
      TAURUS_ASSIGN_OR_RETURN(Batch* b, child_->NextBatch(ctx));
      if (b == nullptr) {
        t.RecordRows(0);
        return nullptr;
      }
      TAURUS_RETURN_IF_ERROR(FilterBatch(op_->conds, b, ctx));
      if (!b->sel.empty()) {
        t.RecordRows(static_cast<int64_t>(b->sel.size()));
        return b;
      }
    }
  }

 private:
  const PhysOp* op_;
  std::unique_ptr<BatchOp> child_;
};

/// Vectorized hash-join probe over the same HashJoinShared build state the
/// Volcano iterator uses. Probe keys are evaluated as whole vectors and
/// hashed in bulk; candidate emission is resumable so output batches stay
/// bounded by ctx->batch_size even through high-fanout keys. Covers
/// inner/cross (residual conds applied as a post-emit FilterBatch — order
/// preserving, so results are bit-identical) and left joins without
/// residual conds (a row matched iff its candidate list is nonempty).
class BatchHashJoinProbe : public BatchOp {
 public:
  /// Serial form passes `build_iter` (own state rebuilt per Open); worker
  /// form passes `shared` (prebuilt read-only state).
  BatchHashJoinProbe(const PhysOp* op, std::unique_ptr<BatchOp> child,
                     std::unique_ptr<FrameIter> build_iter,
                     const HashJoinShared* shared)
      : op_(op),
        layout_(MakeHashJoinLayout(*op)),
        probe_refs_(
            SubtreeRefs(layout_.build_is_left ? *op->right : *op->child)),
        child_(std::move(child)),
        build_iter_(std::move(build_iter)),
        shared_(shared) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    OpTimer t(op_, ctx);
    if (shared_ == nullptr) {
      TAURUS_RETURN_IF_ERROR(FillHashJoinState(
          *op_, layout_, build_iter_.get(), frame, ctx, &own_state_));
    } else {
      ClearSlots(frame, layout_.build_refs);
    }
    // Probe-side Fast-AGMS stream: same gating and ownership rules as the
    // Volcano HashJoinIter (serial pipelines only; this instance owns the
    // stream). Updates are fed batch-at-a-time in PrepareInput — sketch
    // folds are order-independent, so the stream digests to the same state
    // as the row-interleaved path.
    probe_sketch_ = nullptr;
    if (ctx->sketches != nullptr && !ctx->is_worker_shard &&
        shared_ == nullptr) {
      const PhysOp& probe_child =
          layout_.build_is_left ? *op_->right : *op_->child;
      std::string stream = SketchStreamKey(probe_child, layout_.probe_keys);
      if (!stream.empty()) {
        probe_sketch_ = ctx->sketches->BeginStream(stream, this);
      }
    }
    TAURUS_RETURN_IF_ERROR(child_->Open(frame, ctx));
    out_.Reset(frame->size(), frame);
    for (int r : probe_refs_) out_.Activate(r);
    for (int r : layout_.build_refs) out_.Activate(r);
    cap_ = std::max<int64_t>(1, ctx->batch_size);
    in_ = nullptr;
    in_pos_ = 0;
    row_ready_ = false;
    t.RecordOpen();
    return Status::OK();
  }

  Result<Batch*> NextBatch(ExecContext* ctx) override {
    OpTimer t(op_, ctx);
    while (true) {
      ResetOut();
      TAURUS_ASSIGN_OR_RETURN(bool more, FillOut(ctx));
      if (!op_->conds.empty() && !out_.sel.empty()) {
        TAURUS_RETURN_IF_ERROR(FilterBatch(op_->conds, &out_, ctx));
      }
      if (!out_.sel.empty()) {
        t.RecordRows(static_cast<int64_t>(out_.sel.size()));
        return &out_;
      }
      if (!more) {
        t.RecordRows(0);
        return nullptr;
      }
    }
  }

 private:
  void ResetOut() {
    for (int r : probe_refs_) out_.cols[static_cast<size_t>(r)].clear();
    for (int r : layout_.build_refs) out_.cols[static_cast<size_t>(r)].clear();
    out_.sel.clear();
    out_.size = 0;
  }

  /// Evaluates the key vectors, null map, bulk hashes (replicating
  /// HashRow's combine exactly) and the probe-side sketch updates for the
  /// freshly pulled input batch.
  Status PrepareInput(ExecContext* ctx) {
    const size_t n = in_->sel.size();
    const size_t nk = layout_.probe_keys.size();
    keys_.resize(nk);
    for (size_t k = 0; k < nk; ++k) {
      TAURUS_RETURN_IF_ERROR(
          EvalExprBatch(*layout_.probe_keys[k], *in_, ctx, &keys_[k]));
    }
    null_key_.assign(n, 0);
    hashes_.assign(n, 0x9e3779b97f4a7c15ULL);
    for (size_t k = 0; k < nk; ++k) {
      const std::vector<Value>& col = keys_[k];
      for (size_t i = 0; i < n; ++i) {
        if (col[i].is_null()) null_key_[i] = 1;
        hashes_[i] = HashCombine(hashes_[i], col[i].Hash());
      }
    }
    if (probe_sketch_ != nullptr && nk > 0) {
      for (size_t i = 0; i < n; ++i) {
        if (null_key_[i] == 0) probe_sketch_->Update(keys_[0][i].Hash());
      }
    }
    return Status::OK();
  }

  /// Fills the output batch up to cap_. Returns false when the probe input
  /// is exhausted (a partially filled output may still need emitting).
  Result<bool> FillOut(ExecContext* ctx) {
    const HashJoinShared& state = shared_ != nullptr ? *shared_ : own_state_;
    const JoinType jt = op_->join_type;
    while (static_cast<int64_t>(out_.size) < cap_) {
      if (in_ == nullptr) {
        TAURUS_ASSIGN_OR_RETURN(Batch* nb, child_->NextBatch(ctx));
        if (nb == nullptr) return false;
        in_ = nb;
        in_pos_ = 0;
        row_ready_ = false;
        TAURUS_RETURN_IF_ERROR(PrepareInput(ctx));
      }
      if (in_pos_ >= in_->sel.size()) {
        in_ = nullptr;
        continue;
      }
      if (!row_ready_) {
        BuildCandidates(state);
        row_ready_ = true;
      }
      if (EmitCurrentRow(state, jt)) {
        ++in_pos_;
        row_ready_ = false;
      }
    }
    return true;
  }

  void BuildCandidates(const HashJoinShared& state) {
    candidates_.clear();
    cand_pos_ = 0;
    const size_t i = in_pos_;
    if (null_key_[i] != 0) return;
    auto [b, e] = state.table.equal_range(hashes_[i]);
    for (auto it = b; it != e; ++it) {
      const HashJoinShared::Entry& cand = state.entries[it->second];
      bool eq = true;
      for (size_t k = 0; k < keys_.size(); ++k) {
        if (Value::Compare(cand.key[k], keys_[k][i]) != 0) {
          eq = false;
          break;
        }
      }
      if (eq) candidates_.push_back(it->second);
    }
  }

  /// Emits the current probe row's remaining candidate pairs (or its
  /// NULL-extended row for an unmatched left probe). Returns true when the
  /// row is done. Precondition: the output batch has room for one row.
  bool EmitCurrentRow(const HashJoinShared& state, JoinType jt) {
    if (candidates_.empty()) {
      if (jt == JoinType::kLeft) EmitRow(nullptr);
      return true;  // inner/cross: unmatched probe rows vanish
    }
    while (cand_pos_ < candidates_.size()) {
      if (static_cast<int64_t>(out_.size) >= cap_) return false;
      EmitRow(&state.entries[candidates_[cand_pos_++]]);
    }
    return true;
  }

  /// Appends one output row: probe slots copied from the input batch,
  /// build slots restored from the entry (null = NULL-extended).
  void EmitRow(const HashJoinShared::Entry* entry) {
    const uint32_t prow = in_->sel[in_pos_];
    for (int r : probe_refs_) {
      const size_t slot = static_cast<size_t>(r);
      const Row* rp =
          in_->active[slot] != 0
              ? in_->cols[slot][prow]
              : (in_->base != nullptr ? (*in_->base)[slot] : nullptr);
      out_.cols[slot].push_back(rp);
    }
    for (int r : layout_.build_refs) {
      const size_t slot = static_cast<size_t>(r);
      const Row* rp = entry != nullptr && entry->frame.present[slot]
                          ? &entry->frame.rows[slot]
                          : nullptr;
      out_.cols[slot].push_back(rp);
    }
    out_.sel.push_back(static_cast<uint32_t>(out_.size));
    ++out_.size;
  }

  const PhysOp* op_;
  HashJoinLayout layout_;
  std::vector<int> probe_refs_;
  std::unique_ptr<BatchOp> child_;
  std::unique_ptr<FrameIter> build_iter_;   ///< serial form only
  const HashJoinShared* shared_ = nullptr;  ///< worker form only
  HashJoinShared own_state_;
  AgmsSketch* probe_sketch_ = nullptr;

  Batch out_;
  int64_t cap_ = 1;

  // Probe-input cursor state (survives across NextBatch calls).
  Batch* in_ = nullptr;
  size_t in_pos_ = 0;
  bool row_ready_ = false;
  std::vector<std::vector<Value>> keys_;  ///< per key expr, per sel entry
  std::vector<uint8_t> null_key_;
  std::vector<uint64_t> hashes_;
  std::vector<size_t> candidates_;
  size_t cand_pos_ = 0;
};

/// Frame->Batch adapter: drives a Volcano subtree row by row and buffers
/// its slots into batches so everything above runs vectorized. Only valid
/// over subtrees whose row pointers stay put while buffered (see
/// StableRowSource). Actuals for the buffered subtree come from its own
/// AnalyzeIter wrappers — this adapter records nothing.
class FrameSourceBatchOp : public BatchOp {
 public:
  FrameSourceBatchOp(const PhysOp* op, std::unique_ptr<FrameIter> iter)
      : refs_(SubtreeRefs(*op)), iter_(std::move(iter)) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    frame_ = frame;
    batch_.Reset(frame->size(), frame);
    for (int r : refs_) batch_.Activate(r);
    cap_ = std::max<int64_t>(1, ctx->batch_size);
    return iter_->Open(frame, ctx);
  }

  Result<Batch*> NextBatch(ExecContext* ctx) override {
    for (int r : refs_) batch_.cols[static_cast<size_t>(r)].clear();
    batch_.sel.clear();
    batch_.size = 0;
    while (static_cast<int64_t>(batch_.size) < cap_) {
      TAURUS_ASSIGN_OR_RETURN(bool has, iter_->Next(frame_, ctx));
      if (!has) break;
      for (int r : refs_) {
        const size_t slot = static_cast<size_t>(r);
        batch_.cols[slot].push_back((*frame_)[slot]);
      }
      batch_.sel.push_back(static_cast<uint32_t>(batch_.size));
      ++batch_.size;
    }
    if (batch_.sel.empty()) return nullptr;
    return &batch_;
  }

 private:
  std::vector<int> refs_;
  std::unique_ptr<FrameIter> iter_;
  Frame* frame_ = nullptr;
  int64_t cap_ = 1;
  Batch batch_;
};

/// Batch->Frame adapter: lets a Volcano consumer pull rows off a fully
/// batch-native chain one at a time.
class BatchIterAdapter : public FrameIter {
 public:
  BatchIterAdapter(const PhysOp* op, std::unique_ptr<BatchOp> chain)
      : refs_(SubtreeRefs(*op)), chain_(std::move(chain)) {}

  Status Open(Frame* frame, ExecContext* ctx) override {
    cur_ = nullptr;
    pos_ = 0;
    return chain_->Open(frame, ctx);
  }

  Result<bool> Next(Frame* frame, ExecContext* ctx) override {
    while (cur_ == nullptr || pos_ >= cur_->sel.size()) {
      TAURUS_ASSIGN_OR_RETURN(cur_, chain_->NextBatch(ctx));
      pos_ = 0;
      if (cur_ == nullptr) {
        ClearSlots(frame, refs_);
        return false;
      }
      ++ctx->batches;
      ctx->batch_rows += static_cast<int64_t>(cur_->sel.size());
    }
    cur_->FillFrame(cur_->sel[pos_++], frame);
    return true;
  }

 private:
  std::vector<int> refs_;
  std::unique_ptr<BatchOp> chain_;
  Batch* cur_ = nullptr;
  size_t pos_ = 0;
};

/// True when every row pointer the subtree produces stays valid for a
/// whole buffered drain. Storage-backed scans always qualify; cached
/// derived tables do (the materialization outlives the pipeline) but
/// correlated re-materializing ones do not; a hash join's build entries
/// survive until its next Open — which happens mid-drain only when the
/// join sits under a nested-loop right side (rebound per outer row).
bool StableRowSource(const PhysOp& op, bool under_nl_right) {
  switch (op.kind) {
    case PhysOp::Kind::kDerivedScan:
      return !op.invalidate_on_rebind;
    case PhysOp::Kind::kHashJoin:
      if (under_nl_right) return false;
      return StableRowSource(*op.child, under_nl_right) &&
             StableRowSource(*op.right, under_nl_right);
    case PhysOp::Kind::kNLJoin:
      return StableRowSource(*op.child, under_nl_right) &&
             StableRowSource(*op.right, /*under_nl_right=*/true);
    case PhysOp::Kind::kFilter:
      return StableRowSource(*op.child, under_nl_right);
    default:
      return true;
  }
}

/// Recursive chain builder. Strict mode (worker chains, Batch->Frame
/// grafts) refuses any non-native operator; lax mode ends the vectorized
/// run with a Frame->Batch source over the foreign subtree when its row
/// pointers are stable.
std::unique_ptr<BatchOp> BuildBatchOp(const PhysOp* op, ExecContext* ctx,
                                      const PipelineShared* shared,
                                      bool strict, BatchChain* chain) {
  const bool analyze = ctx->op_actuals != nullptr;
  switch (op->kind) {
    case PhysOp::Kind::kTableScan: {
      auto scan = std::make_unique<BatchTableScan>(op);
      chain->driver = scan.get();
      ++chain->native_ops;
      return scan;
    }
    case PhysOp::Kind::kFilter: {
      std::unique_ptr<BatchOp> child =
          BuildBatchOp(op->child.get(), ctx, shared, strict, chain);
      if (child == nullptr) return nullptr;
      ++chain->native_ops;
      return std::make_unique<BatchFilter>(op, std::move(child));
    }
    case PhysOp::Kind::kHashJoin: {
      if (!HashJoinBatchNative(*op)) break;
      HashJoinLayout layout = MakeHashJoinLayout(*op);
      const PhysOp* probe_child =
          layout.build_is_left ? op->right.get() : op->child.get();
      const PhysOp* build_child =
          layout.build_is_left ? op->child.get() : op->right.get();
      std::unique_ptr<BatchOp> child =
          BuildBatchOp(probe_child, ctx, shared, strict, chain);
      if (child == nullptr) return nullptr;
      if (shared != nullptr) {
        auto it = shared->hash_states.find(op);
        if (it == shared->hash_states.end()) return nullptr;
        ++chain->native_ops;
        return std::make_unique<BatchHashJoinProbe>(op, std::move(child),
                                                    nullptr, &it->second);
      }
      // The build side is drained fully by FillHashJoinState, so it may
      // itself run vectorized behind a Batch->Frame adapter.
      std::unique_ptr<FrameIter> build =
          ChildIter(build_child, analyze, ctx, /*allow_batch=*/true);
      ++chain->native_ops;
      return std::make_unique<BatchHashJoinProbe>(op, std::move(child),
                                                  std::move(build), nullptr);
    }
    default:
      break;
  }
  if (strict) return nullptr;
  if (!StableRowSource(*op, /*under_nl_right=*/false)) return nullptr;
  std::unique_ptr<FrameIter> iter =
      BuildIter(op, analyze, ctx, /*allow_batch=*/true);
  if (iter == nullptr) return nullptr;
  return std::make_unique<FrameSourceBatchOp>(op, std::move(iter));
}

}  // namespace

Status BatchTableScan::Open(Frame* frame, ExecContext* ctx) {
  OpTimer t(op_, ctx);
  data_ = ctx->storage->Get(op_->leaf->table->id);
  if (data_ == nullptr) {
    return Status::Internal("no storage for table " + op_->leaf->table_name);
  }
  pos_ = ranged_ ? range_begin_ : 0;
  end_ = ranged_ ? std::min(range_end_, data_->NumRows()) : data_->NumRows();
  cap_ = std::max<int64_t>(1, ctx->batch_size);
  batch_.Reset(frame->size(), frame);
  batch_.Activate(op_->leaf->ref_id);
  t.RecordOpen();
  return Status::OK();
}

Result<Batch*> BatchTableScan::NextBatch(ExecContext* ctx) {
  OpTimer t(op_, ctx);
  const size_t slot = static_cast<size_t>(op_->leaf->ref_id);
  std::vector<const Row*>& col = batch_.cols[slot];
  while (pos_ < end_) {
    const size_t n = std::min(static_cast<size_t>(cap_), end_ - pos_);
    col.resize(n);
    for (size_t i = 0; i < n; ++i) col[i] = &data_->row(pos_ + i);
    pos_ += n;
    batch_.size = n;
    batch_.sel.resize(n);
    for (size_t i = 0; i < n; ++i) batch_.sel[i] = static_cast<uint32_t>(i);
    // Charged before the filters run, in scan order, so the row-budget
    // kill fires at the same global count as the row-at-a-time scan.
    TAURUS_RETURN_IF_ERROR(ctx->ChargeScannedRows(static_cast<int64_t>(n)));
    TAURUS_RETURN_IF_ERROR(FilterBatch(op_->filters, &batch_, ctx));
    if (!batch_.sel.empty()) {
      t.RecordRows(static_cast<int64_t>(batch_.sel.size()));
      return &batch_;
    }
  }
  t.RecordRows(0);
  return nullptr;
}

bool HashJoinBatchNative(const PhysOp& op) {
  if (op.kind != PhysOp::Kind::kHashJoin) return false;
  switch (op.join_type) {
    case JoinType::kInner:
    case JoinType::kCross:
      return true;
    case JoinType::kLeft:
      // Unmatched-probe detection is per row (candidates empty), which a
      // residual condition would break: conds can reject every candidate
      // after the fact, and that must emit a NULL-extended row instead.
      return op.conds.empty();
    default:
      return false;  // semi/anti need interleaved matched-tracking
  }
}

BatchChain BuildBatchChain(const PhysOp* op, ExecContext* ctx,
                           const PipelineShared* shared) {
  BatchChain chain;
  if (ctx == nullptr || !ctx->use_batch) return chain;
  chain.root = BuildBatchOp(op, ctx, shared, /*strict=*/shared != nullptr,
                            &chain);
  if (chain.root == nullptr) {
    chain.driver = nullptr;
    chain.native_ops = 0;
  }
  return chain;
}

std::unique_ptr<FrameIter> MakeBatchIterAdapter(const PhysOp* op,
                                                ExecContext* ctx) {
  if (ctx == nullptr || !ctx->use_batch) return nullptr;
  BatchChain chain;
  chain.root =
      BuildBatchOp(op, ctx, /*shared=*/nullptr, /*strict=*/true, &chain);
  if (chain.root == nullptr || chain.native_ops == 0) return nullptr;
  return std::make_unique<BatchIterAdapter>(op, std::move(chain.root));
}

}  // namespace taurus
