#ifndef TAURUS_EXEC_OP_ACTUALS_H_
#define TAURUS_EXEC_OP_ACTUALS_H_

#include <cstdint>
#include <unordered_map>

namespace taurus {

/// Measured execution of one plan node (PhysOp or BlockPlan) under
/// EXPLAIN ANALYZE: total rows produced, times (re-)opened, and inclusive
/// wall time. Under the parallel executor the per-shard maps merge by
/// summation, so rows/loops/time are totals across workers and a driver
/// scan's loops count the morsels it processed.
struct OpActual {
  int64_t rows = 0;
  int64_t loops = 0;
  double time_ms = 0.0;
};

/// Actuals keyed by plan-node address (the compiled plan outlives the
/// execution that fills this map).
class OpActualsMap {
 public:
  OpActual& At(const void* node) { return map_[node]; }

  const OpActual* Find(const void* node) const {
    auto it = map_.find(node);
    return it != map_.end() ? &it->second : nullptr;
  }

  void Merge(const OpActualsMap& other) {
    for (const auto& [node, a] : other.map_) {
      OpActual& mine = map_[node];
      mine.rows += a.rows;
      mine.loops += a.loops;
      mine.time_ms += a.time_ms;
    }
  }

  bool empty() const { return map_.empty(); }
  size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

  const std::unordered_map<const void*, OpActual>& entries() const {
    return map_;
  }

 private:
  std::unordered_map<const void*, OpActual> map_;
};

}  // namespace taurus

#endif  // TAURUS_EXEC_OP_ACTUALS_H_
