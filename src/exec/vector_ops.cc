#include "exec/vector_ops.h"

#include <cstdint>
#include <utility>

#include "common/strings.h"
#include "exec/expr_eval.h"
#include "parser/ast_util.h"

namespace taurus {

namespace {

/// Shared state of one vectorized evaluation: the batch plus a lazily
/// built scratch frame for per-row scalar fallbacks (subquery expressions).
struct BatchEval {
  BatchEval(const Batch* batch, ExecContext* context)
      : b(batch), ctx(context) {}

  const Batch* b;
  ExecContext* ctx;
  Frame scratch;
  bool scratch_ready = false;

  Frame* Scratch() {
    if (!scratch_ready) {
      scratch = *b->base;
      scratch_ready = true;
    }
    return &scratch;
  }
};

/// Evaluates `e` for the physical rows listed in `rows[0..n)`, writing
/// `out[0..n)`. The row list — not the batch's selection vector — is the
/// recursion unit, so AND/OR/CASE can restrict sub-expressions to exactly
/// the rows the scalar interpreter would evaluate them on.
Status EvalRows(const Expr& e, BatchEval* be, const uint32_t* rows, size_t n,
                Value* out);

/// Scalar-interpreter fallback: reconstitutes each row into the scratch
/// frame and calls EvalExpr. Used for subquery expressions (and any kind
/// without a vector implementation); aggregates correctly error exactly as
/// they would row-at-a-time.
Status EvalRowsViaFrame(const Expr& e, BatchEval* be, const uint32_t* rows,
                        size_t n, Value* out) {
  Frame* f = be->Scratch();
  for (size_t i = 0; i < n; ++i) {
    be->b->FillFrame(rows[i], f);
    TAURUS_ASSIGN_OR_RETURN(out[i], EvalExpr(e, *f, nullptr, be->ctx));
  }
  return Status::OK();
}

Status EvalAndRows(const Expr& e, BatchEval* be, const uint32_t* rows,
                   size_t n, Value* out) {
  std::vector<Value> l(n);
  TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[0], be, rows, n, l.data()));
  // The right side runs only where the left is not false — the rows the
  // scalar interpreter's short-circuit would reach.
  std::vector<uint32_t> sub;
  sub.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (l[i].is_null() || l[i].IsTrue()) sub.push_back(rows[i]);
  }
  std::vector<Value> r(sub.size());
  if (!sub.empty()) {
    TAURUS_RETURN_IF_ERROR(
        EvalRows(*e.children[1], be, sub.data(), sub.size(), r.data()));
  }
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!l[i].is_null() && !l[i].IsTrue()) {
      out[i] = Value::Bool(false);
      continue;
    }
    const Value& rv = r[k++];
    if (!rv.is_null() && !rv.IsTrue()) {
      out[i] = Value::Bool(false);
    } else if (l[i].is_null() || rv.is_null()) {
      out[i] = Value::Null();
    } else {
      out[i] = Value::Bool(true);
    }
  }
  return Status::OK();
}

Status EvalOrRows(const Expr& e, BatchEval* be, const uint32_t* rows,
                  size_t n, Value* out) {
  std::vector<Value> l(n);
  TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[0], be, rows, n, l.data()));
  std::vector<uint32_t> sub;
  sub.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (l[i].is_null() || !l[i].IsTrue()) sub.push_back(rows[i]);
  }
  std::vector<Value> r(sub.size());
  if (!sub.empty()) {
    TAURUS_RETURN_IF_ERROR(
        EvalRows(*e.children[1], be, sub.data(), sub.size(), r.data()));
  }
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!l[i].is_null() && l[i].IsTrue()) {
      out[i] = Value::Bool(true);
      continue;
    }
    const Value& rv = r[k++];
    if (!rv.is_null() && rv.IsTrue()) {
      out[i] = Value::Bool(true);
    } else if (l[i].is_null() || rv.is_null()) {
      out[i] = Value::Null();
    } else {
      out[i] = Value::Bool(false);
    }
  }
  return Status::OK();
}

Status EvalCaseRows(const Expr& e, BatchEval* be, const uint32_t* rows,
                    size_t n, Value* out) {
  const size_t nch = e.children.size() - (e.case_has_else ? 1 : 0);
  // Positions (into rows/out) still looking for a matching WHEN.
  std::vector<uint32_t> pend(n);
  for (size_t i = 0; i < n; ++i) pend[i] = static_cast<uint32_t>(i);
  std::vector<uint32_t> sub, matched, still;
  std::vector<Value> cond, branch;
  for (size_t p = 0; p + 1 < nch && !pend.empty(); p += 2) {
    sub.clear();
    for (uint32_t pos : pend) sub.push_back(rows[pos]);
    cond.assign(pend.size(), Value());
    TAURUS_RETURN_IF_ERROR(
        EvalRows(*e.children[p], be, sub.data(), sub.size(), cond.data()));
    matched.clear();
    still.clear();
    for (size_t k = 0; k < pend.size(); ++k) {
      if (!cond[k].is_null() && cond[k].IsTrue()) {
        matched.push_back(pend[k]);
      } else {
        still.push_back(pend[k]);
      }
    }
    if (!matched.empty()) {
      sub.clear();
      for (uint32_t pos : matched) sub.push_back(rows[pos]);
      branch.assign(matched.size(), Value());
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[p + 1], be, sub.data(),
                                      sub.size(), branch.data()));
      for (size_t k = 0; k < matched.size(); ++k) {
        out[matched[k]] = std::move(branch[k]);
      }
    }
    pend.swap(still);
  }
  if (pend.empty()) return Status::OK();
  if (e.case_has_else) {
    sub.clear();
    for (uint32_t pos : pend) sub.push_back(rows[pos]);
    branch.assign(pend.size(), Value());
    TAURUS_RETURN_IF_ERROR(EvalRows(*e.children.back(), be, sub.data(),
                                    sub.size(), branch.data()));
    for (size_t k = 0; k < pend.size(); ++k) {
      out[pend[k]] = std::move(branch[k]);
    }
  } else {
    for (uint32_t pos : pend) out[pos] = Value::Null();
  }
  return Status::OK();
}

Status EvalInListRows(const Expr& e, BatchEval* be, const uint32_t* rows,
                      size_t n, Value* out) {
  std::vector<Value> v(n);
  TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[0], be, rows, n, v.data()));
  const size_t nitems = e.children.size() - 1;
  // Constant list items evaluate once; non-constant ones per row, stopping
  // at the first match like the scalar interpreter.
  std::vector<uint8_t> is_const(nitems), cached(nitems, 0);
  std::vector<Value> cache(nitems);
  for (size_t j = 0; j < nitems; ++j) {
    is_const[j] = IsConstExpr(*e.children[j + 1]) ? 1 : 0;
  }
  for (size_t i = 0; i < n; ++i) {
    if (v[i].is_null()) {
      out[i] = Value::Null();
      continue;
    }
    bool saw_null = false;
    bool found = false;
    for (size_t j = 0; j < nitems; ++j) {
      const Expr& item = *e.children[j + 1];
      Value tmp;
      const Value* iv;
      if (is_const[j] != 0) {
        if (cached[j] == 0) {
          TAURUS_RETURN_IF_ERROR(EvalRows(item, be, &rows[i], 1, &cache[j]));
          cached[j] = 1;
        }
        iv = &cache[j];
      } else {
        TAURUS_RETURN_IF_ERROR(EvalRows(item, be, &rows[i], 1, &tmp));
        iv = &tmp;
      }
      if (iv->is_null()) {
        saw_null = true;
        continue;
      }
      if (Value::Compare(v[i], *iv) == 0) {
        found = true;
        break;
      }
    }
    if (found) {
      out[i] = Value::Bool(!e.negated);
    } else {
      out[i] = saw_null ? Value::Null() : Value::Bool(e.negated);
    }
  }
  return Status::OK();
}

Status EvalRows(const Expr& e, BatchEval* be, const uint32_t* rows, size_t n,
                Value* out) {
  const Batch& b = *be->b;
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      for (size_t i = 0; i < n; ++i) out[i] = e.literal;
      return Status::OK();
    case Expr::Kind::kColumnRef: {
      if (e.ref_id < 0 || static_cast<size_t>(e.ref_id) >= b.num_slots()) {
        return Status::Internal("unbound column ref: " + e.ToString());
      }
      const size_t slot = static_cast<size_t>(e.ref_id);
      const size_t col = static_cast<size_t>(e.column_idx);
      if (b.active[slot] != 0) {
        const std::vector<const Row*>& cp = b.cols[slot];
        for (size_t i = 0; i < n; ++i) {
          const Row* rw = cp[rows[i]];
          out[i] = rw != nullptr ? (*rw)[col] : Value::Null();
        }
      } else {
        // Outer-binding slot: one gather, broadcast to every row.
        const Row* rw = b.base != nullptr ? (*b.base)[slot] : nullptr;
        Value v = rw != nullptr ? (*rw)[col] : Value::Null();
        for (size_t i = 0; i < n; ++i) out[i] = v;
      }
      return Status::OK();
    }
    case Expr::Kind::kBinary: {
      if (e.bop == BinaryOp::kAnd) return EvalAndRows(e, be, rows, n, out);
      if (e.bop == BinaryOp::kOr) return EvalOrRows(e, be, rows, n, out);
      std::vector<Value> l(n), r(n);
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[0], be, rows, n, l.data()));
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[1], be, rows, n, r.data()));
      if (IsComparisonOp(e.bop)) {
        for (size_t i = 0; i < n; ++i) out[i] = EvalComparison(e.bop, l[i], r[i]);
        return Status::OK();
      }
      for (size_t i = 0; i < n; ++i) {
        TAURUS_ASSIGN_OR_RETURN(out[i], EvalArithmetic(e.bop, l[i], r[i]));
      }
      return Status::OK();
    }
    case Expr::Kind::kUnary: {
      std::vector<Value> v(n);
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[0], be, rows, n, v.data()));
      for (size_t i = 0; i < n; ++i) {
        TAURUS_ASSIGN_OR_RETURN(out[i], EvalUnary(e.uop, v[i]));
      }
      return Status::OK();
    }
    case Expr::Kind::kFuncCall: {
      const size_t nc = e.children.size();
      std::vector<std::vector<Value>> ch(nc);
      for (size_t c = 0; c < nc; ++c) {
        ch[c].assign(n, Value());
        TAURUS_RETURN_IF_ERROR(
            EvalRows(*e.children[c], be, rows, n, ch[c].data()));
      }
      for (size_t i = 0; i < n; ++i) {
        std::vector<Value> args;
        args.reserve(nc);
        for (size_t c = 0; c < nc; ++c) args.push_back(std::move(ch[c][i]));
        TAURUS_ASSIGN_OR_RETURN(out[i], EvalFunction(e, std::move(args)));
      }
      return Status::OK();
    }
    case Expr::Kind::kCase:
      return EvalCaseRows(e, be, rows, n, out);
    case Expr::Kind::kInList:
      return EvalInListRows(e, be, rows, n, out);
    case Expr::Kind::kBetween: {
      std::vector<Value> v(n), lo(n), hi(n);
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[0], be, rows, n, v.data()));
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[1], be, rows, n, lo.data()));
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[2], be, rows, n, hi.data()));
      for (size_t i = 0; i < n; ++i) {
        if (v[i].is_null() || lo[i].is_null() || hi[i].is_null()) {
          out[i] = Value::Null();
          continue;
        }
        bool in = Value::Compare(v[i], lo[i]) >= 0 &&
                  Value::Compare(v[i], hi[i]) <= 0;
        out[i] = Value::Bool(e.negated ? !in : in);
      }
      return Status::OK();
    }
    case Expr::Kind::kLike: {
      std::vector<Value> v(n), p(n);
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[0], be, rows, n, v.data()));
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[1], be, rows, n, p.data()));
      for (size_t i = 0; i < n; ++i) {
        if (v[i].is_null() || p[i].is_null()) {
          out[i] = Value::Null();
          continue;
        }
        bool m = SqlLikeMatch(v[i].ToString(), p[i].ToString());
        out[i] = Value::Bool(e.negated ? !m : m);
      }
      return Status::OK();
    }
    case Expr::Kind::kCast: {
      std::vector<Value> v(n);
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[0], be, rows, n, v.data()));
      for (size_t i = 0; i < n; ++i) {
        TAURUS_ASSIGN_OR_RETURN(out[i], EvalCast(v[i], e.cast_type));
      }
      return Status::OK();
    }
    case Expr::Kind::kIntervalAdd: {
      std::vector<Value> v(n);
      TAURUS_RETURN_IF_ERROR(EvalRows(*e.children[0], be, rows, n, v.data()));
      for (size_t i = 0; i < n; ++i) out[i] = EvalIntervalAdd(e, v[i]);
      return Status::OK();
    }
    case Expr::Kind::kAgg:
    case Expr::Kind::kExists:
    case Expr::Kind::kInSubquery:
    case Expr::Kind::kScalarSubquery:
      return EvalRowsViaFrame(e, be, rows, n, out);
  }
  return EvalRowsViaFrame(e, be, rows, n, out);
}

/// Copy-free kernel for `col <cmp> literal` (either operand order) and
/// `col BETWEEN lit AND lit`: compares storage rows in place, keeping rows
/// whose comparison is non-NULL true. Returns false when the shape does
/// not match (generic path handles it).
bool TryFastColCmpFilter(const Expr& e, Batch* b) {
  auto col_ok = [&](const Expr& c) {
    return c.kind == Expr::Kind::kColumnRef && c.ref_id >= 0 &&
           static_cast<size_t>(c.ref_id) < b->num_slots() &&
           b->active[static_cast<size_t>(c.ref_id)] != 0;
  };
  if (e.kind == Expr::Kind::kBinary && IsComparisonOp(e.bop)) {
    const Expr& c0 = *e.children[0];
    const Expr& c1 = *e.children[1];
    const bool col_left = col_ok(c0) && c1.kind == Expr::Kind::kLiteral;
    const bool col_right =
        !col_left && c0.kind == Expr::Kind::kLiteral && col_ok(c1);
    if (!col_left && !col_right) return false;
    const Expr& cr = col_left ? c0 : c1;
    const Value& lit = col_left ? c1.literal : c0.literal;
    if (lit.is_null()) {  // NULL comparand never satisfies
      b->sel.clear();
      return true;
    }
    const std::vector<const Row*>& cp = b->cols[static_cast<size_t>(cr.ref_id)];
    const size_t col = static_cast<size_t>(cr.column_idx);
    const BinaryOp op = e.bop;
    size_t w = 0;
    for (uint32_t r : b->sel) {
      const Row* rw = cp[r];
      if (rw == nullptr) continue;
      const Value& v = (*rw)[col];
      if (v.is_null()) continue;
      const int c = col_left ? Value::Compare(v, lit) : Value::Compare(lit, v);
      bool pass = false;
      switch (op) {
        case BinaryOp::kEq: pass = c == 0; break;
        case BinaryOp::kNe: pass = c != 0; break;
        case BinaryOp::kLt: pass = c < 0; break;
        case BinaryOp::kLe: pass = c <= 0; break;
        case BinaryOp::kGt: pass = c > 0; break;
        case BinaryOp::kGe: pass = c >= 0; break;
        default: break;
      }
      if (pass) b->sel[w++] = r;
    }
    b->sel.resize(w);
    return true;
  }
  if (e.kind == Expr::Kind::kBetween && !e.negated && col_ok(*e.children[0]) &&
      e.children[1]->kind == Expr::Kind::kLiteral &&
      e.children[2]->kind == Expr::Kind::kLiteral) {
    const Value& lo = e.children[1]->literal;
    const Value& hi = e.children[2]->literal;
    if (lo.is_null() || hi.is_null()) {
      b->sel.clear();
      return true;
    }
    const Expr& cr = *e.children[0];
    const std::vector<const Row*>& cp = b->cols[static_cast<size_t>(cr.ref_id)];
    const size_t col = static_cast<size_t>(cr.column_idx);
    size_t w = 0;
    for (uint32_t r : b->sel) {
      const Row* rw = cp[r];
      if (rw == nullptr) continue;
      const Value& v = (*rw)[col];
      if (v.is_null()) continue;
      if (Value::Compare(v, lo) >= 0 && Value::Compare(v, hi) <= 0) {
        b->sel[w++] = r;
      }
    }
    b->sel.resize(w);
    return true;
  }
  return false;
}

}  // namespace

Status EvalExprBatch(const Expr& expr, const Batch& batch, ExecContext* ctx,
                     std::vector<Value>* out) {
  const size_t n = batch.sel.size();
  out->assign(n, Value());
  if (n == 0) return Status::OK();
  BatchEval be(&batch, ctx);
  return EvalRows(expr, &be, batch.sel.data(), n, out->data());
}

Status FilterBatch(const std::vector<const Expr*>& conds, Batch* batch,
                   ExecContext* ctx) {
  std::vector<Value> v;
  for (const Expr* cond : conds) {
    if (batch->sel.empty()) return Status::OK();
    if (TryFastColCmpFilter(*cond, batch)) continue;
    const size_t n = batch->sel.size();
    v.assign(n, Value());
    BatchEval be(batch, ctx);
    TAURUS_RETURN_IF_ERROR(
        EvalRows(*cond, &be, batch->sel.data(), n, v.data()));
    size_t w = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!v[i].is_null() && v[i].IsTrue()) batch->sel[w++] = batch->sel[i];
    }
    batch->sel.resize(w);
  }
  return Status::OK();
}

}  // namespace taurus
