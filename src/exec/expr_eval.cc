#include "exec/expr_eval.h"

#include <cmath>
#include <cstdlib>

#include "common/strings.h"
#include "exec/block_executor.h"
#include "parser/ast_util.h"
#include "types/datetime.h"

namespace taurus {

namespace {

bool IsDatetimeFamily(TypeId t) {
  return t == TypeId::kDatetime || t == TypeId::kDatetime2 ||
         t == TypeId::kTimestamp || t == TypeId::kTimestamp2;
}

/// Converts any temporal value to days-since-epoch.
int64_t TemporalToDays(const Value& v) {
  if (IsDatetimeFamily(v.type())) {
    int64_t secs = v.AsInt();
    return secs >= 0 ? secs / 86400 : (secs - 86399) / 86400;
  }
  return v.AsInt();
}

}  // namespace

Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  bool both_int =
      l.kind() == Value::Kind::kInt && r.kind() == Value::Kind::kInt;
  switch (op) {
    case BinaryOp::kAdd:
      if (both_int) return Value::Int(l.AsInt() + r.AsInt());
      return Value::Double(l.AsDouble() + r.AsDouble());
    case BinaryOp::kSub:
      if (both_int) return Value::Int(l.AsInt() - r.AsInt());
      return Value::Double(l.AsDouble() - r.AsDouble());
    case BinaryOp::kMul:
      if (both_int) return Value::Int(l.AsInt() * r.AsInt());
      return Value::Double(l.AsDouble() * r.AsDouble());
    case BinaryOp::kDiv: {
      double d = r.AsDouble();
      if (d == 0.0) return Value::Null();  // MySQL: division by zero -> NULL
      return Value::Double(l.AsDouble() / d);
    }
    case BinaryOp::kMod: {
      if (both_int) {
        int64_t d = r.AsInt();
        if (d == 0) return Value::Null();
        return Value::Int(l.AsInt() % d);
      }
      double d = r.AsDouble();
      if (d == 0.0) return Value::Null();
      return Value::Double(std::fmod(l.AsDouble(), d));
    }
    default:
      return Status::Internal("not an arithmetic op");
  }
}

Value EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = Value::Compare(l, r);
  bool out = false;
  switch (op) {
    case BinaryOp::kEq:
      out = c == 0;
      break;
    case BinaryOp::kNe:
      out = c != 0;
      break;
    case BinaryOp::kLt:
      out = c < 0;
      break;
    case BinaryOp::kLe:
      out = c <= 0;
      break;
    case BinaryOp::kGt:
      out = c > 0;
      break;
    case BinaryOp::kGe:
      out = c >= 0;
      break;
    default:
      break;
  }
  return Value::Bool(out);
}

Result<Value> EvalCast(const Value& v, TypeId target) {
  if (v.is_null()) return Value::Null();
  TypeCategory cat = CategoryOf(target);
  switch (cat) {
    case TypeCategory::kInt2:
    case TypeCategory::kInt4:
    case TypeCategory::kInt8:
      if (v.kind() == Value::Kind::kString) {
        return Value::Int(std::strtoll(v.AsString().c_str(), nullptr, 10),
                          target);
      }
      return Value::Int(static_cast<int64_t>(v.AsDouble()), target);
    case TypeCategory::kNum:
      if (v.kind() == Value::Kind::kString) {
        return Value::Double(std::strtod(v.AsString().c_str(), nullptr),
                             target);
      }
      return Value::Double(v.AsDouble(), target);
    case TypeCategory::kStr:
    case TypeCategory::kBlb:
      return Value::Str(v.ToString(), TypeId::kVarchar);
    case TypeCategory::kDte: {
      if (v.kind() == Value::Kind::kString) {
        TAURUS_ASSIGN_OR_RETURN(int64_t days, ParseDate(v.AsString()));
        return Value::Date(days);
      }
      return Value::Date(TemporalToDays(v));
    }
    case TypeCategory::kDtm: {
      if (v.kind() == Value::Kind::kString) {
        TAURUS_ASSIGN_OR_RETURN(int64_t secs, ParseDatetime(v.AsString()));
        return Value::Datetime(secs);
      }
      if (IsDatetimeFamily(v.type())) return v;
      return Value::Datetime(v.AsInt() * 86400);
    }
    default:
      return Status::NotSupported("unsupported CAST target");
  }
}

Result<Value> EvalFunction(const Expr& expr, std::vector<Value> args) {
  const std::string& f = expr.func_name;
  // NULL propagation for the simple scalar functions.
  auto null_in = [&args]() {
    for (const Value& a : args) {
      if (a.is_null()) return true;
    }
    return false;
  };
  if (f == "year" || f == "month" || f == "day") {
    if (args[0].is_null()) return Value::Null();
    int64_t days = TemporalToDays(args[0]);
    if (f == "year") return Value::Int(ExtractYear(days), TypeId::kLong);
    if (f == "month") return Value::Int(ExtractMonth(days), TypeId::kLong);
    return Value::Int(ExtractDay(days), TypeId::kLong);
  }
  if (f == "substring" || f == "substr") {
    if (null_in()) return Value::Null();
    const std::string& s = args[0].AsString();
    int64_t pos = args[1].AsInt();  // 1-based
    int64_t len = args.size() > 2 ? args[2].AsInt()
                                  : static_cast<int64_t>(s.size());
    if (pos < 1) pos = 1;
    if (static_cast<size_t>(pos - 1) >= s.size() || len <= 0) {
      return Value::Str("");
    }
    return Value::Str(s.substr(static_cast<size_t>(pos - 1),
                               static_cast<size_t>(len)));
  }
  if (f == "upper") {
    if (null_in()) return Value::Null();
    std::string s = args[0].AsString();
    for (char& c : s) c = static_cast<char>(std::toupper(
        static_cast<unsigned char>(c)));
    return Value::Str(std::move(s));
  }
  if (f == "lower") {
    if (null_in()) return Value::Null();
    return Value::Str(AsciiLower(args[0].AsString()));
  }
  if (f == "length") {
    if (null_in()) return Value::Null();
    return Value::Int(static_cast<int64_t>(args[0].AsString().size()),
                      TypeId::kLong);
  }
  if (f == "concat") {
    if (null_in()) return Value::Null();
    std::string out;
    for (const Value& a : args) out += a.ToString();
    return Value::Str(std::move(out));
  }
  if (f == "trim") {
    if (null_in()) return Value::Null();
    const std::string& s = args[0].AsString();
    size_t b = s.find_first_not_of(' ');
    size_t e = s.find_last_not_of(' ');
    if (b == std::string::npos) return Value::Str("");
    return Value::Str(s.substr(b, e - b + 1));
  }
  if (f == "abs") {
    if (null_in()) return Value::Null();
    if (args[0].kind() == Value::Kind::kInt) {
      return Value::Int(std::llabs(args[0].AsInt()));
    }
    return Value::Double(std::fabs(args[0].AsDouble()));
  }
  if (f == "round") {
    if (null_in()) return Value::Null();
    double scale = 1.0;
    if (args.size() > 1) scale = std::pow(10.0, args[1].AsDouble());
    if (args[0].kind() == Value::Kind::kInt && args.size() <= 1) {
      return args[0];
    }
    return Value::Double(std::round(args[0].AsDouble() * scale) / scale);
  }
  if (f == "mod") {
    return EvalArithmetic(BinaryOp::kMod, args[0], args[1]);
  }
  if (f == "coalesce") {
    for (Value& a : args) {
      if (!a.is_null()) return std::move(a);
    }
    return Value::Null();
  }
  if (f == "ifnull") {
    return args[0].is_null() ? std::move(args[1]) : std::move(args[0]);
  }
  if (f == "nullif") {
    if (args[0].is_null()) return Value::Null();
    if (!args[1].is_null() && Value::Compare(args[0], args[1]) == 0) {
      return Value::Null();
    }
    return std::move(args[0]);
  }
  if (f == "if") {
    bool cond = !args[0].is_null() && args[0].IsTrue();
    return cond ? std::move(args[1]) : std::move(args[2]);
  }
  return Status::NotSupported("unknown function at runtime: " + f);
}

Result<Value> EvalUnary(UnaryOp op, const Value& v) {
  switch (op) {
    case UnaryOp::kNot:
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.IsTrue());
    case UnaryOp::kNeg:
      if (v.is_null()) return Value::Null();
      if (v.kind() == Value::Kind::kInt) return Value::Int(-v.AsInt());
      return Value::Double(-v.AsDouble());
    case UnaryOp::kIsNull:
      return Value::Bool(v.is_null());
    case UnaryOp::kIsNotNull:
      return Value::Bool(!v.is_null());
  }
  return Status::Internal("bad unary op");
}

Value EvalIntervalAdd(const Expr& expr, const Value& v) {
  if (v.is_null()) return Value::Null();
  if (IsDatetimeFamily(v.type())) {
    if (expr.interval_unit == IntervalUnit::kDay) {
      return Value::Datetime(v.AsInt() + expr.interval_amount * 86400);
    }
    int64_t days = TemporalToDays(v);
    int64_t rem = v.AsInt() - days * 86400;
    int64_t new_days =
        AddIntervalToDate(days, expr.interval_amount, expr.interval_unit);
    return Value::Datetime(new_days * 86400 + rem);
  }
  return Value::Date(AddIntervalToDate(v.AsInt(), expr.interval_amount,
                                       expr.interval_unit));
}

namespace {

/// Runs an expression subquery and returns its rows (cached when
/// non-correlated).
Result<const std::vector<Row>*> RunSubplan(const Expr& expr,
                                           const Frame& frame,
                                           ExecContext* ctx) {
  if (expr.subplan_id < 0 || ctx == nullptr || ctx->query == nullptr) {
    return Status::Internal("subquery was not compiled");
  }
  Subplan* sp =
      ctx->query->subplans[static_cast<size_t>(expr.subplan_id)].get();
  if (!sp->correlated) {
    auto it = ctx->subplan_cache.find(expr.subplan_id);
    if (it != ctx->subplan_cache.end()) return &it->second;
  }
  TAURUS_ASSIGN_OR_RETURN(std::vector<Row> rows,
                          ExecuteBlock(*sp->plan, frame, ctx));
  auto [it, inserted] =
      ctx->subplan_cache.insert_or_assign(expr.subplan_id, std::move(rows));
  (void)inserted;
  return &it->second;
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const Frame& frame,
                       const AggContext* agg, ExecContext* ctx) {
  // Post-aggregation matching: aggregates and group keys by structure.
  if (agg != nullptr) {
    if (expr.kind == Expr::Kind::kAgg) {
      for (size_t i = 0; i < agg->agg_exprs->size(); ++i) {
        if (ExprEquals(*(*agg->agg_exprs)[i], expr)) {
          return (*agg->agg_values)[i];
        }
      }
      return Status::Internal("aggregate not computed: " + expr.ToString());
    }
    if (agg->group_exprs != nullptr) {
      for (size_t i = 0; i < agg->group_exprs->size(); ++i) {
        if (ExprEquals(*(*agg->group_exprs)[i], expr)) {
          return (*agg->group_values)[i];
        }
      }
    }
  }

  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kColumnRef: {
      if (expr.ref_id < 0 ||
          static_cast<size_t>(expr.ref_id) >= frame.size()) {
        return Status::Internal("unbound column ref: " + expr.ToString());
      }
      const Row* row = frame[static_cast<size_t>(expr.ref_id)];
      if (row == nullptr) return Value::Null();  // NULL-extended / no scope
      return (*row)[static_cast<size_t>(expr.column_idx)];
    }
    case Expr::Kind::kBinary: {
      if (expr.bop == BinaryOp::kAnd) {
        TAURUS_ASSIGN_OR_RETURN(Value l,
                                EvalExpr(*expr.children[0], frame, agg, ctx));
        if (!l.is_null() && !l.IsTrue()) return Value::Bool(false);
        TAURUS_ASSIGN_OR_RETURN(Value r,
                                EvalExpr(*expr.children[1], frame, agg, ctx));
        if (!r.is_null() && !r.IsTrue()) return Value::Bool(false);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(true);
      }
      if (expr.bop == BinaryOp::kOr) {
        TAURUS_ASSIGN_OR_RETURN(Value l,
                                EvalExpr(*expr.children[0], frame, agg, ctx));
        if (!l.is_null() && l.IsTrue()) return Value::Bool(true);
        TAURUS_ASSIGN_OR_RETURN(Value r,
                                EvalExpr(*expr.children[1], frame, agg, ctx));
        if (!r.is_null() && r.IsTrue()) return Value::Bool(true);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(false);
      }
      TAURUS_ASSIGN_OR_RETURN(Value l,
                              EvalExpr(*expr.children[0], frame, agg, ctx));
      TAURUS_ASSIGN_OR_RETURN(Value r,
                              EvalExpr(*expr.children[1], frame, agg, ctx));
      if (IsComparisonOp(expr.bop)) return EvalComparison(expr.bop, l, r);
      return EvalArithmetic(expr.bop, l, r);
    }
    case Expr::Kind::kUnary: {
      TAURUS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*expr.children[0], frame, agg, ctx));
      return EvalUnary(expr.uop, v);
    }
    case Expr::Kind::kFuncCall: {
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const auto& c : expr.children) {
        TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, frame, agg, ctx));
        args.push_back(std::move(v));
      }
      return EvalFunction(expr, std::move(args));
    }
    case Expr::Kind::kAgg:
      return Status::Internal(
          "aggregate evaluated outside aggregation context: " +
          expr.ToString());
    case Expr::Kind::kCase: {
      size_t n = expr.children.size() - (expr.case_has_else ? 1 : 0);
      for (size_t i = 0; i + 1 < n; i += 2) {
        TAURUS_ASSIGN_OR_RETURN(Value cond,
                                EvalExpr(*expr.children[i], frame, agg, ctx));
        if (!cond.is_null() && cond.IsTrue()) {
          return EvalExpr(*expr.children[i + 1], frame, agg, ctx);
        }
      }
      if (expr.case_has_else) {
        return EvalExpr(*expr.children.back(), frame, agg, ctx);
      }
      return Value::Null();
    }
    case Expr::Kind::kInList: {
      TAURUS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*expr.children[0], frame, agg, ctx));
      if (v.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        TAURUS_ASSIGN_OR_RETURN(Value item,
                                EvalExpr(*expr.children[i], frame, agg, ctx));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (Value::Compare(v, item) == 0) {
          return Value::Bool(!expr.negated);
        }
      }
      if (saw_null) return Value::Null();
      return Value::Bool(expr.negated);
    }
    case Expr::Kind::kBetween: {
      TAURUS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*expr.children[0], frame, agg, ctx));
      TAURUS_ASSIGN_OR_RETURN(Value lo,
                              EvalExpr(*expr.children[1], frame, agg, ctx));
      TAURUS_ASSIGN_OR_RETURN(Value hi,
                              EvalExpr(*expr.children[2], frame, agg, ctx));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in = Value::Compare(v, lo) >= 0 && Value::Compare(v, hi) <= 0;
      return Value::Bool(expr.negated ? !in : in);
    }
    case Expr::Kind::kLike: {
      TAURUS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*expr.children[0], frame, agg, ctx));
      TAURUS_ASSIGN_OR_RETURN(Value p,
                              EvalExpr(*expr.children[1], frame, agg, ctx));
      if (v.is_null() || p.is_null()) return Value::Null();
      bool m = SqlLikeMatch(v.ToString(), p.ToString());
      return Value::Bool(expr.negated ? !m : m);
    }
    case Expr::Kind::kExists: {
      TAURUS_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                              RunSubplan(expr, frame, ctx));
      bool exists = !rows->empty();
      return Value::Bool(expr.negated ? !exists : exists);
    }
    case Expr::Kind::kInSubquery: {
      TAURUS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*expr.children[0], frame, agg, ctx));
      TAURUS_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                              RunSubplan(expr, frame, ctx));
      if (v.is_null()) return rows->empty() ? Value::Bool(expr.negated)
                                            : Value::Null();
      bool saw_null = false;
      for (const Row& r : *rows) {
        if (r[0].is_null()) {
          saw_null = true;
          continue;
        }
        if (Value::Compare(v, r[0]) == 0) return Value::Bool(!expr.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(expr.negated);
    }
    case Expr::Kind::kScalarSubquery: {
      TAURUS_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                              RunSubplan(expr, frame, ctx));
      if (rows->empty()) return Value::Null();
      if (rows->size() > 1) {
        return Status::ExecutionError("scalar subquery returned >1 row");
      }
      return (*rows)[0][0];
    }
    case Expr::Kind::kCast: {
      TAURUS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*expr.children[0], frame, agg, ctx));
      return EvalCast(v, expr.cast_type);
    }
    case Expr::Kind::kIntervalAdd: {
      TAURUS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*expr.children[0], frame, agg, ctx));
      return EvalIntervalAdd(expr, v);
    }
  }
  return Status::Internal("unreachable expr kind in eval");
}

Result<bool> EvalPredicate(const Expr& expr, const Frame& frame,
                           const AggContext* agg, ExecContext* ctx) {
  TAURUS_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, frame, agg, ctx));
  return !v.is_null() && v.IsTrue();
}

Result<bool> EvalConjuncts(const std::vector<const Expr*>& conds,
                           const Frame& frame, const AggContext* agg,
                           ExecContext* ctx) {
  for (const Expr* cond : conds) {
    TAURUS_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*cond, frame, agg, ctx));
    if (!ok) return false;
  }
  return true;
}

bool IsConstExpr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kColumnRef:
    case Expr::Kind::kAgg:
    case Expr::Kind::kExists:
    case Expr::Kind::kInSubquery:
    case Expr::Kind::kScalarSubquery:
      return false;
    default:
      break;
  }
  for (const auto& c : expr.children) {
    if (!IsConstExpr(*c)) return false;
  }
  return true;
}

Result<Value> EvalConstExpr(const Expr& expr) {
  if (!IsConstExpr(expr)) {
    return Status::NotSupported("not a constant expression");
  }
  Frame empty;
  return EvalExpr(expr, empty, nullptr, nullptr);
}

}  // namespace taurus
