#ifndef TAURUS_EXEC_BATCH_EXECUTOR_H_
#define TAURUS_EXEC_BATCH_EXECUTOR_H_

// Vectorized (batch-at-a-time) execution over the same physical plans the
// Volcano executor runs. Operators pull column-major Batches of up to
// ExecContext::batch_size rows; filters shrink the selection vector in
// place, hash-join probes hash whole key vectors against the shared build
// state, and a Batch<->Frame adapter pair keeps every operator the batch
// engine does not speak (nested-loop joins, index scans, derived scans)
// on the row-at-a-time path. See DESIGN.md section 13.

#include <memory>

#include "exec/batch.h"
#include "exec/exec_internal.h"

namespace taurus {

/// A vectorized operator. The contract differs from FrameIter in two ways:
/// NextBatch never returns a batch with an empty selection (operators loop
/// internally past fully filtered blocks), and nullptr means end of stream.
/// A returned Batch stays valid until the next NextBatch/Open call on the
/// same operator.
class BatchOp {
 public:
  virtual ~BatchOp() = default;
  /// (Re)positions at the start; `frame` carries the outer bindings and
  /// becomes the base frame of every batch this operator emits.
  virtual Status Open(Frame* frame, ExecContext* ctx) = 0;
  virtual Result<Batch*> NextBatch(ExecContext* ctx) = 0;
};

/// The batch-native driving scan, exposed so the morsel executor can
/// reposition worker-private chains with SetRange + Open per morsel
/// (mirroring TableScanIter).
class BatchTableScan : public BatchOp {
 public:
  explicit BatchTableScan(const PhysOp* op) : op_(op) {}

  void SetRange(size_t begin, size_t end) {
    ranged_ = true;
    range_begin_ = begin;
    range_end_ = end;
  }

  const PhysOp* Op() const { return op_; }

  Status Open(Frame* frame, ExecContext* ctx) override;
  Result<Batch*> NextBatch(ExecContext* ctx) override;

 private:
  const PhysOp* op_;
  const TableData* data_ = nullptr;
  size_t pos_ = 0;
  size_t end_ = 0;
  bool ranged_ = false;
  size_t range_begin_ = 0, range_end_ = 0;
  int64_t cap_ = 1;
  Batch batch_;
};

/// A built batch pipeline over the driving chain of one plan subtree.
struct BatchChain {
  std::unique_ptr<BatchOp> root;  ///< null when nothing would vectorize
  /// The repositionable driving scan when the chain bottoms out in a
  /// batch-native TableScan (worker chains require it).
  BatchTableScan* driver = nullptr;
  /// Operators running vectorized (excludes the Frame->Batch source).
  int native_ops = 0;
};

/// True when this hash join's shape has a vectorized probe: inner/cross
/// (residual conds run as a post-emit FilterBatch), or left with no
/// residual condition (matched == candidates nonempty). Semi/anti and
/// conditional left joins need interleaved matched-tracking and stay on
/// the Volcano path. Shared with refine-time AnalyzeBatchSafety so the
/// surfaced flags and the runtime chain builder never disagree.
bool HashJoinBatchNative(const PhysOp& op);

/// Builds a batch pipeline over `op`'s driving chain.
///
/// shared == nullptr (serial form): hash joins build their own state on
/// Open; the topmost run of batch-native operators is vectorized and the
/// first foreign operator below it becomes a Frame->Batch source adapter
/// (Volcano below, batches above) — unless its buffered row pointers could
/// dangle (correlated derived scans, hash joins re-built under a
/// nested-loop right side), in which case root stays null.
///
/// shared != nullptr (morsel worker form): strictly batch-native chains
/// only, probing the prebuilt read-only hash states; root is null unless
/// the whole chain down to the TableScan driver vectorizes.
///
/// Returns an empty chain when ctx->use_batch is off or nothing would run
/// vectorized (callers fall back to the Volcano chain).
BatchChain BuildBatchChain(const PhysOp* op, ExecContext* ctx,
                           const PipelineShared* shared);

/// Batch->Frame adapter over a fully batch-native subtree, or null when
/// the subtree does not vectorize end to end. This is how Volcano-headed
/// plans still run their hot segments (hash-join build sides, nested-loop
/// outer sides) vectorized.
std::unique_ptr<FrameIter> MakeBatchIterAdapter(const PhysOp* op,
                                                ExecContext* ctx);

}  // namespace taurus

#endif  // TAURUS_EXEC_BATCH_EXECUTOR_H_
