#ifndef TAURUS_EXEC_BLOCK_EXECUTOR_H_
#define TAURUS_EXEC_BLOCK_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "exec/exec_context.h"
#include "exec/frame.h"
#include "exec/physical_plan.h"

namespace taurus {

/// Executes one block plan (joins → aggregation → HAVING → ORDER BY →
/// LIMIT → projection → UNION combination) and returns the materialized
/// output rows. `outer` supplies bindings for correlated references; pass
/// an all-null frame (sized CompiledQuery::num_refs) at the top level.
Result<std::vector<Row>> ExecuteBlock(const BlockPlan& plan,
                                      const Frame& outer, ExecContext* ctx);

/// Convenience top-level entry: executes a compiled query against storage.
Result<std::vector<Row>> ExecuteQuery(CompiledQuery* query,
                                      const Storage& storage,
                                      ExecContext* ctx_out = nullptr);

}  // namespace taurus

#endif  // TAURUS_EXEC_BLOCK_EXECUTOR_H_
