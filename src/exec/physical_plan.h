#ifndef TAURUS_EXEC_PHYSICAL_PLAN_H_
#define TAURUS_EXEC_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "feedback/card_source.h"
#include "parser/ast.h"

namespace taurus {

struct BlockPlan;

/// Frame-producing physical operator (the join/scan part of a block's plan).
/// Block-level aggregation / ordering / projection live on BlockPlan, which
/// mirrors MySQL's execution model: joins first, then grouping, HAVING,
/// ordering and row-limit (Section 2.2).
struct PhysOp {
  enum class Kind {
    kTableScan,    ///< full scan of a base table leaf
    kIndexRange,   ///< range scan over index `index_id` on the first key col
    kIndexLookup,  ///< "ref" access: key columns bound to outer expressions
    kDerivedScan,  ///< scan of a materialized derived table / CTE copy
    kNLJoin,       ///< nested-loop join; right side re-opened per left row
    kHashJoin,     ///< hash join on `hash_keys`
    kFilter,       ///< residual filter (e.g. above a left join)
  };

  Kind kind = Kind::kTableScan;

  // --- scans ---
  const TableRef* leaf = nullptr;
  int index_id = -1;
  /// Pushed-down single-leaf conjuncts (evaluated per row). May reference
  /// outer (correlated) leaves.
  std::vector<const Expr*> filters;
  // kIndexRange bounds on the index's first key column (literal-valued).
  const Expr* range_lo = nullptr;
  const Expr* range_hi = nullptr;
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  /// kIndexLookup: expressions (over already-bound leaves) supplying each
  /// key column value; size <= number of index key columns.
  std::vector<const Expr*> lookup_keys;

  // kDerivedScan
  BlockPlan* derived_plan = nullptr;
  /// True when the derived table references outer leaves and must be
  /// re-materialized whenever the binding outer row changes — the paper's
  /// "Materialize (invalidate on row from ...)" (Listing 7).
  bool invalidate_on_rebind = false;

  // --- joins / filter ---
  JoinType join_type = JoinType::kInner;
  std::unique_ptr<PhysOp> child;   ///< left child / filter input
  std::unique_ptr<PhysOp> right;   ///< right child (joins)
  /// Equi-join key pairs for kHashJoin: left expr == right expr.
  std::vector<std::pair<const Expr*, const Expr*>> hash_keys;
  /// Join condition conjuncts evaluated at the join (kNLJoin: full ON;
  /// kHashJoin: residual after hash keys; kFilter: the filter condition).
  std::vector<const Expr*> conds;

  // Optimizer estimates, surfaced in EXPLAIN (copied from Orca when the
  // plan took the Orca detour — Section 4.2.2).
  double est_rows = 0.0;
  double est_cost = 0.0;
  /// Where est_rows came from: histogram formulas, a Fast-AGMS sketch, or
  /// harvested execution actuals (DESIGN.md section 11).
  CardSource card_source = CardSource::kHistogram;

  /// True when this operator has a vectorized (batch-at-a-time)
  /// implementation: table scans, filters, and hash-join probes of
  /// batchable shape (see HashJoinBatchNative). Set by refine-time
  /// AnalyzeBatchSafety; surfaced in EXPLAIN.
  bool batch_native = false;
  /// Why the operator stays row-at-a-time ("" when batch_native).
  std::string batch_serial_reason;

  /// Pre-order leaf list (the "best-position array" view of this subtree).
  void CollectLeaves(std::vector<const PhysOp*>* out) const {
    if (kind == Kind::kNLJoin || kind == Kind::kHashJoin) {
      child->CollectLeaves(out);
      right->CollectLeaves(out);
    } else if (kind == Kind::kFilter) {
      child->CollectLeaves(out);
    } else {
      out->push_back(this);
    }
  }
};

/// Aggregate computation mode chosen during plan refinement.
enum class AggMode { kNone, kHash, kStream };

/// Executable plan for one query block (plus UNION continuations).
struct BlockPlan {
  const QueryBlock* block = nullptr;

  /// Frame-producing tree; null when the block has no FROM clause.
  std::unique_ptr<PhysOp> join_root;

  // Aggregation.
  AggMode agg_mode = AggMode::kNone;
  std::vector<const Expr*> group_exprs;
  /// All aggregate Expr nodes appearing in SELECT/HAVING/ORDER BY, in
  /// discovery order; post-aggregation expressions are matched against
  /// these structurally.
  std::vector<const Expr*> agg_exprs;

  const Expr* having = nullptr;

  std::vector<std::pair<const Expr*, bool>> order_keys;  ///< (expr, asc)
  /// True when the join tree already delivers rows in ORDER BY order (an
  /// ascending index range scan drives a pure nested-loop left spine), so
  /// the sort is elided — the paper's "an index scan can also supply a
  /// required row order" Orca enhancement (Section 7 Orca-change item 4).
  bool order_satisfied = false;
  int64_t limit = -1;
  int64_t offset = 0;
  bool distinct = false;

  std::vector<const Expr*> projections;
  std::vector<std::string> column_names;

  /// True when refinement proved the block's driving pipeline safe for the
  /// morsel-driven parallel executor: a TableScan-driven probe chain with
  /// no correlation, no expression subqueries in worker-evaluated
  /// expressions, and mergeable output (see DESIGN.md section 8). The
  /// executor still applies runtime gates (worker pool present, driver
  /// table large enough).
  bool parallel_eligible = false;
  /// Why the pipeline must stay serial ("" when parallel_eligible);
  /// surfaced in EXPLAIN.
  std::string serial_reason;

  /// True when the block's whole driving chain (join_root down its probe
  /// path to the driving TableScan) is batch-native end to end, so the
  /// executor can run it vectorized — including under morsel-driven
  /// workers. The executor may still run partial batch segments behind
  /// adapters when this is false; the flag drives EXPLAIN surfacing and
  /// the worker-chain fast path.
  bool batch_eligible = false;
  /// Why the driving chain stays row-at-a-time ("" when batch_eligible).
  std::string batch_serial_reason;

  // UNION [ALL] arms (each compiled independently; the head block's
  // order/limit apply to the union result).
  std::vector<std::unique_ptr<BlockPlan>> union_arms;
  bool union_all = false;
  /// For unions, ORDER BY keys resolved to output column positions
  /// (position, ascending); filled during refinement.
  std::vector<std::pair<int, bool>> union_order_positions;

  double est_rows = 0.0;
  double est_cost = 0.0;
};

/// A compiled expression-level subquery (EXISTS / IN / scalar). The plan is
/// re-run per outer row when correlated; non-correlated results are cached
/// by the evaluator.
struct Subplan {
  std::unique_ptr<BlockPlan> plan;
  bool correlated = false;
};

/// A fully compiled statement: the bound AST (owning all Expr/TableRef
/// nodes), the root block plan, expression-subquery plans, and any
/// expressions synthesized during optimization/refinement.
struct CompiledQuery {
  std::unique_ptr<QueryBlock> ast;  ///< bound & prepared AST (owns exprs)
  int num_refs = 0;

  std::unique_ptr<BlockPlan> root;
  std::vector<std::unique_ptr<Subplan>> subplans;
  /// Plans for derived tables / CTE copies, referenced from kDerivedScan
  /// nodes (which hold raw pointers).
  std::vector<std::unique_ptr<BlockPlan>> owned_blocks;
  /// Owner for expressions created after binding (predicate rewrites,
  /// synthesized equality conjuncts, ...).
  std::vector<std::unique_ptr<Expr>> owned_exprs;

  /// True when the plan was produced via the Orca detour.
  bool used_orca = false;
  /// Optimization wall-clock time, for the Table 1 experiment.
  double optimize_ms = 0.0;

  /// True when the skeleton came from the engine's plan cache rather than
  /// a fresh optimizer run.
  bool plan_cache_hit = false;
  /// On a cache hit: the cold compile's optimize time minus this compile's,
  /// i.e. the optimizer work the cache avoided. 0 on misses.
  double optimize_saved_ms = 0.0;

  /// True when the Orca detour was attempted and failed, and this plan is
  /// the clean MySQL-path fallback (Section 4.2.1).
  bool fell_back = false;
  /// The detour failure that caused the fallback ("" when !fell_back).
  std::string fallback_reason;
  /// True when the detour was skipped because the statement is quarantined
  /// (it failed the detour too many times since the last version bump).
  bool quarantine_hit = false;
  /// Statement fingerprint hash (0 when fingerprinting was skipped).
  uint64_t fingerprint = 0;
  /// Canonical statement text behind `fingerprint` ("" when fingerprinting
  /// was skipped) — the digest store's display text.
  std::string canonical;

  /// Plan-verifier summary for this compilation: total rule evaluations
  /// across the boundary verifiers that ran, and how many fired (surfaced
  /// in EXPLAIN as "plan_verifier: N rules, M violations").
  int verifier_rules = 0;
  int verifier_violations = 0;

  /// Cardinality-feedback override counts for this compilation: how many
  /// memo cardinalities came from harvested actuals / Fast-AGMS sketches
  /// instead of histogram formulas (0 when feedback is off or nothing was
  /// harvested for this fingerprint yet).
  int64_t feedback_actual_overrides = 0;
  int64_t feedback_sketch_overrides = 0;
};

}  // namespace taurus

#endif  // TAURUS_EXEC_PHYSICAL_PLAN_H_
