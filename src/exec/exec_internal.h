#ifndef TAURUS_EXEC_EXEC_INTERNAL_H_
#define TAURUS_EXEC_EXEC_INTERNAL_H_

// Internals shared between the row-at-a-time Volcano executor
// (block_executor.cc) and the vectorized batch executor
// (batch_executor.cc): the iterator interface, the hash-join build
// machinery (one build, probed by either engine), and the driving-path
// helpers. Not part of the public executor API.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/exec_context.h"
#include "exec/frame.h"
#include "exec/physical_plan.h"

namespace taurus {

/// Returns the ref_ids of all leaves under a physical subtree.
std::vector<int> SubtreeRefs(const PhysOp& op);

void ClearSlots(Frame* frame, const std::vector<int>& refs);

/// Row-at-a-time (Volcano) iterator over a PhysOp subtree.
class FrameIter {
 public:
  virtual ~FrameIter() = default;
  /// (Re)positions the iterator at the start. The frame carries the current
  /// outer bindings; index lookups and correlated derived tables read them
  /// here (a re-Open with new bindings is a "rebind").
  virtual Status Open(Frame* frame, ExecContext* ctx) = 0;
  /// Advances; on success fills this subtree's slots in `frame`.
  virtual Result<bool> Next(Frame* frame, ExecContext* ctx) = 0;
};

/// Static (per-plan-node) hash join shape: which child builds, which slots
/// the build side populates, and the key expressions on each side.
struct HashJoinLayout {
  bool build_is_left = false;
  std::vector<int> build_refs;
  std::vector<const Expr*> build_keys;
  std::vector<const Expr*> probe_keys;
};

/// Convention: the build side is the right child — except for INNER hash
/// joins, where (matching the MySQL quirk the paper reports in Section 7
/// item 2) the BUILD side is the LEFT child and the probe side the right.
HashJoinLayout MakeHashJoinLayout(const PhysOp& op);

/// The sketchable stream key of one hash-join side ("" when the side is
/// not a single leaf joined on one plain column — see DESIGN.md §11).
std::string SketchStreamKey(const PhysOp& side,
                            const std::vector<const Expr*>& keys);

/// The materialized build side of a hash join. Built once (serially), then
/// probed — possibly by many workers concurrently, which is safe because
/// probing never mutates it.
struct HashJoinShared {
  struct Entry {
    Row key;
    OwnedFrame frame;  ///< only the build subtree's slots (narrowed copy)
  };
  std::unordered_multimap<uint64_t, size_t> table;
  std::vector<Entry> entries;
};

/// Drains `build` into `out` (NULL keys skipped, AGMS build stream fed).
Status FillHashJoinState(const PhysOp& op, const HashJoinLayout& layout,
                         FrameIter* build, Frame* frame, ExecContext* ctx,
                         HashJoinShared* out);

/// The probe/driving child a pipeline descends through (null for leaves).
const PhysOp* DrivingChild(const PhysOp& op);

/// The driving TableScan of an eligible pipeline (null defensively).
const PhysOp* FindDriverScan(const PhysOp* op);

/// Hash-join build sides along the driving path, materialized once on the
/// main thread and probed read-only by all workers.
struct PipelineShared {
  std::unordered_map<const PhysOp*, HashJoinShared> hash_states;
};

/// Builds the Volcano iterator tree for `op`. When `allow_batch` is set
/// (the consumer drains the subtree fully — no LIMIT-style early exit) and
/// `ctx->use_batch` is on, batch-native subtrees are grafted in behind a
/// Batch→Frame adapter so even Volcano-headed plans run their hot segments
/// vectorized. `ctx` may be null (knob treated as off).
std::unique_ptr<FrameIter> BuildIter(const PhysOp* op, bool analyze,
                                     ExecContext* ctx, bool allow_batch);

/// BuildIter for a child subtree position: wraps the whole subtree in a
/// Batch→Frame adapter when it is fully batch-native (and `allow_batch`).
std::unique_ptr<FrameIter> ChildIter(const PhysOp* op, bool analyze,
                                     ExecContext* ctx, bool allow_batch);

}  // namespace taurus

#endif  // TAURUS_EXEC_EXEC_INTERNAL_H_
