#ifndef TAURUS_EXEC_VECTOR_OPS_H_
#define TAURUS_EXEC_VECTOR_OPS_H_

#include <vector>

#include "common/result.h"
#include "exec/batch.h"
#include "exec/exec_context.h"
#include "parser/ast.h"

namespace taurus {

/// Evaluates `expr` once per selected row of `batch`, writing one value per
/// selection entry into `out` (resized to batch.sel.size(), parallel to it).
/// Bit-identical to calling EvalExpr row by row: AND/OR/CASE/IN evaluate
/// sub-expressions only for the rows the scalar interpreter would have
/// reached (short-circuit via row-index sublists), so error and subquery
/// side-effect behavior is preserved. Expressions the vector path cannot
/// split (aggregates, EXISTS/IN/scalar subqueries) fall back to the scalar
/// interpreter per row through the batch's base frame.
Status EvalExprBatch(const Expr& expr, const Batch& batch, ExecContext* ctx,
                     std::vector<Value>* out);

/// Applies each conjunct over the batch, shrinking `batch->sel` in place to
/// the rows where the conjunct is non-NULL true before evaluating the next
/// one — the vectorized form of short-circuit AND. Column-vs-literal
/// comparisons (and BETWEEN) take a copy-free compare kernel.
Status FilterBatch(const std::vector<const Expr*>& conds, Batch* batch,
                   ExecContext* ctx);

}  // namespace taurus

#endif  // TAURUS_EXEC_VECTOR_OPS_H_
