#ifndef TAURUS_EXEC_FRAME_H_
#define TAURUS_EXEC_FRAME_H_

#include <vector>

#include "types/value.h"

namespace taurus {

/// A Frame is the unit of data flowing between frame-producing operators
/// (scans, joins, filters): one slot per table-reference leaf in the whole
/// statement, indexed by TableRef::ref_id. A slot points at the leaf's
/// current row (owned by a scan's table, an index, or a materialized
/// derived table) or is null when the leaf is not in scope / NULL-extended.
using Frame = std::vector<const Row*>;

/// A deep copy of (the occupied slots of) a Frame, used by buffering
/// operators (sort, group-by representative rows, hash join build sides)
/// whose inputs outlive the producing iterator's current position.
struct OwnedFrame {
  std::vector<Row> rows;        ///< storage, parallel to `present`
  std::vector<bool> present;    ///< slot occupancy

  OwnedFrame() = default;

  /// Captures `frame` by value.
  explicit OwnedFrame(const Frame& frame) {
    rows.resize(frame.size());
    present.resize(frame.size(), false);
    for (size_t i = 0; i < frame.size(); ++i) {
      if (frame[i] != nullptr) {
        rows[i] = *frame[i];
        present[i] = true;
      }
    }
  }

  /// Captures only the `slots` of `frame` (for buffering operators that
  /// later reconstitute just those slots, e.g. a hash join's build side —
  /// copying the whole frame there would buffer every in-scope table's
  /// row once per build row).
  OwnedFrame(const Frame& frame, const std::vector<int>& slots) {
    rows.resize(frame.size());
    present.resize(frame.size(), false);
    for (int s : slots) {
      size_t i = static_cast<size_t>(s);
      if (i < frame.size() && frame[i] != nullptr) {
        rows[i] = *frame[i];
        present[i] = true;
      }
    }
  }

  /// Reconstitutes a Frame view pointing into this OwnedFrame's storage.
  /// The view is valid while this object is alive and un-moved.
  Frame View() const {
    Frame f(rows.size(), nullptr);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (present[i]) f[i] = &rows[i];
    }
    return f;
  }
};

}  // namespace taurus

#endif  // TAURUS_EXEC_FRAME_H_
