#include "orca/logical.h"

#include "orca/orca.h"

namespace taurus {

const char* JoinSearchStrategyName(JoinSearchStrategy s) {
  switch (s) {
    case JoinSearchStrategy::kGreedy:
      return "GREEDY";
    case JoinSearchStrategy::kExhaustive:
      return "EXHAUSTIVE";
    case JoinSearchStrategy::kExhaustive2:
      return "EXHAUSTIVE2";
  }
  return "?";
}

std::string OrcaLogicalOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out;
  switch (kind) {
    case Kind::kGet:
      out = pad + "LogicalGet(" + (leaf != nullptr ? leaf->alias : "?") +
            ", oid=" + std::to_string(relation_oid) + ")\n";
      break;
    case Kind::kSelect: {
      out = pad + "LogicalSelect[";
      for (size_t i = 0; i < conds.size(); ++i) {
        if (i) out += " AND ";
        out += conds[i]->ToString();
      }
      out += "]\n";
      break;
    }
    case Kind::kJoin: {
      out = pad + "LogicalJoin(" + JoinTypeName(join_type) + ")[";
      for (size_t i = 0; i < conds.size(); ++i) {
        if (i) out += " AND ";
        out += conds[i]->ToString();
      }
      out += "]\n";
      break;
    }
  }
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

}  // namespace taurus
