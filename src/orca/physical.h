#ifndef TAURUS_ORCA_PHYSICAL_H_
#define TAURUS_ORCA_PHYSICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "feedback/card_source.h"
#include "parser/ast.h"

namespace taurus {

/// Orca physical operator tree, the optimizer's output (Section 4.2). The
/// table-descriptor back-pointers (TableRef* == the TABLE_LIST links) are
/// carried through from the logical Gets, which is what makes the plan
/// converter's query-block discovery cheap and reliable (Section 4.1).
struct OrcaPhysicalOp {
  enum class Kind {
    kTableScan,
    kIndexRangeScan,
    kIndexLookup,  ///< inner side of an index nested-loop join
    kNLJoin,
    kHashJoin,
  };

  Kind kind = Kind::kTableScan;

  // Scans.
  TableRef* leaf = nullptr;
  int index_id = -1;
  std::vector<Expr*> filters;  ///< pushed-down local conjuncts

  // Joins: children[0] = outer/probe, children[1] = inner/build (Orca's
  // convention: build side on the right).
  JoinType join_type = JoinType::kInner;
  std::vector<Expr*> conds;
  std::vector<std::unique_ptr<OrcaPhysicalOp>> children;

  double rows = 0.0;
  double cost = 0.0;
  /// Where `rows` came from (histogram / sketch / harvested actual).
  CardSource card_source = CardSource::kHistogram;
  /// Memo group this operator was extracted from (the numbers shown after
  /// operator names in the paper's Fig. 6).
  int memo_group = -1;

  std::string ToString(int indent = 0) const;
};

}  // namespace taurus

#endif  // TAURUS_ORCA_PHYSICAL_H_
