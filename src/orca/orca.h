#ifndef TAURUS_ORCA_ORCA_H_
#define TAURUS_ORCA_ORCA_H_

#include "myopt/cost_params.h"

namespace taurus {

/// Join-enumeration strategies, mirroring gporca's settings the paper
/// evaluates (Section 6.3): GREEDY orders joins like MySQL (but with
/// cost-based method choice); EXHAUSTIVE runs dynamic programming over
/// linear (one-new-unit-at-a-time) join trees; EXHAUSTIVE2 — "the most
/// thorough setting" — enumerates bushy partitions as well.
enum class JoinSearchStrategy { kGreedy, kExhaustive, kExhaustive2 };

const char* JoinSearchStrategyName(JoinSearchStrategy s);

/// Orca optimizer configuration. The defaults model the paper's setup:
/// EXHAUSTIVE2, OR-refactoring on, bushy plans on, eager aggregation
/// pushdown *off* (MySQL cannot execute GROUP BY below join — Section 7
/// Orca-change item 5), multi-table semi-join build sides off (item 6),
/// and single-node mode on (item 7).
struct OrcaConfig {
  JoinSearchStrategy strategy = JoinSearchStrategy::kExhaustive2;

  /// Factor common conjuncts out of OR ("(a AND x) OR (a AND y)" ->
  /// "a AND (x OR y)"), enabling hash joins and cheaper evaluation —
  /// the TPC-DS Q41 rewrite (Section 6.2).
  bool enable_or_factoring = true;

  /// Allow bushy join trees (EXHAUSTIVE2 only has an effect when on).
  bool enable_bushy = true;

  /// Consider index-nested-loop joins (index lookup on the inner side).
  bool enable_index_nlj = true;

  /// Flip Orca's inner-hash-join children for the MySQL executor's
  /// build-side convention (Section 7 item 2). Disabling this models the
  /// bug the paper found — build sides land on the wrong input.
  bool flip_inner_hash_build = true;

  /// Paper Section 7 item 5: pushing GROUP BY below joins is disabled
  /// because MySQL cannot execute such plans.
  bool enable_eager_agg = false;  // kept for the ablation bench

  /// Section 4.2.3: convert correlated scalar-aggregate subqueries to
  /// grouped derived tables ("Orca might produce a non-correlated
  /// execution plan for a correlated subquery, requiring the derived
  /// table approach") — the Q17 `derived_1_2` conversion.
  bool enable_decorrelation = true;

  /// Single-node mode: distribution/replication properties degenerate
  /// (Section 7 item 7); kept as a flag for documentation symmetry.
  bool single_node_mode = true;

  /// Budget on (left, right) partition pairs evaluated during DP before
  /// the search degrades to greedy completion — Orca's own enumeration
  /// caps, which keep 18-way-join CTE queries (TPC-DS Q64) finite.
  int64_t exhaustive_pair_budget = 200000;
  int64_t exhaustive2_pair_budget = 2000000;

  /// Cost model. Orca's defaults carry the relatively high index-lookup
  /// and hash-join constants the paper calls out as needing tuning
  /// (Section 9); the ablation bench sweeps them.
  CostParams cost = OrcaDefaultCost();

  static CostParams OrcaDefaultCost() {
    CostParams p;
    p.index_descend = 10.0;
    p.index_row = 1.8;
    p.hash_build = 2.0;
    p.hash_probe = 1.2;
    return p;
  }
};

}  // namespace taurus

#endif  // TAURUS_ORCA_ORCA_H_
