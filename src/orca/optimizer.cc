#include "orca/optimizer.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/fault_injector.h"
#include "parser/ast_util.h"

namespace taurus {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Collects base/derived leaves under a logical subtree.
void CollectGetLeaves(const OrcaLogicalOp* op, std::vector<TableRef*>* out) {
  if (op->kind == OrcaLogicalOp::Kind::kGet) {
    out->push_back(op->leaf);
    return;
  }
  for (const auto& c : op->children) CollectGetLeaves(c.get(), out);
}

/// One reorderable element of the flattened join tree.
struct Unit {
  OrcaLogicalOp* op = nullptr;   ///< Get, or subtree root for composites
  TableRef* leaf = nullptr;      ///< set for simple (Get) units
  std::vector<Expr*> local_conds;
  JoinType join_type = JoinType::kInner;
  uint64_t dependency = 0;
  std::vector<Expr*> join_conds;

  double rows = 1.0;             ///< after local conjuncts
  double base_rows = 1.0;        ///< before local conjuncts
  double access_cost = 0.0;      ///< best standalone access cost
  /// Where `rows` came from (harvested actual when feedback overrode it).
  CardSource card_source = CardSource::kHistogram;
  OrcaPhysicalOp::Kind access = OrcaPhysicalOp::Kind::kTableScan;
  int access_index = -1;
  std::unique_ptr<OrcaPhysicalOp> composite_plan;  ///< for composite units
};

struct PoolConjunct {
  Expr* expr = nullptr;
  uint64_t units = 0;
};

/// Best physical alternative memoized per unit subset (a memo group).
struct GroupState {
  int id = -1;
  double rows = -1.0;
  double cost = kInf;
  bool done = false;
  bool is_leaf = false;
  int leaf_unit = -1;
  // Join spec.
  uint64_t left = 0;
  uint64_t right = 0;
  OrcaPhysicalOp::Kind impl = OrcaPhysicalOp::Kind::kHashJoin;
  JoinType join_type = JoinType::kInner;
  int inner_index = -1;  ///< index for index-NLJ lookups on the right leaf
  /// Total lookup work charged for the inner side of an index NLJ (what the
  /// extracted IndexLookup node reports as its cumulative cost — the unit's
  /// standalone access cost is not on the join's cost scale).
  double inner_lookup_cost = 0.0;
};

class JoinSearch {
 public:
  JoinSearch(const OrcaConfig& config, StatsProvider* stats, int num_refs,
             int64_t* partitions, int* groups,
             ResourceGovernor* governor = nullptr,
             const FeedbackSnapshot* feedback = nullptr,
             int64_t* actual_overrides = nullptr,
             int64_t* sketch_overrides = nullptr)
      : config_(config),
        stats_(stats),
        num_refs_(num_refs),
        partitions_(partitions),
        groups_(groups),
        governor_(governor),
        feedback_(feedback),
        actual_overrides_(actual_overrides),
        sketch_overrides_(sketch_overrides) {}

  Status Flatten(OrcaLogicalOp* root);
  Result<std::unique_ptr<OrcaPhysicalOp>> Run();

 private:
  Status FlattenInto(OrcaLogicalOp* op, uint64_t* added,
                     std::vector<Expr*> pending_conds);
  Status AddUnit(OrcaLogicalOp* op, JoinType type, uint64_t dependency,
                 std::vector<Expr*> join_conds,
                 std::vector<Expr*> local_conds, uint64_t* added);
  Status SetupUnit(Unit* unit);

  uint64_t UnitMask(const Expr& e) const;
  bool Admissible(uint64_t set) const;
  std::vector<Expr*> CrossConds(uint64_t a, uint64_t b) const;
  double CrossSelectivity(const std::vector<Expr*>& conds) const;
  double Rows(uint64_t set);
  /// Canonical feedback key for a unit subset: the sorted ref_ids of every
  /// leaf it covers (composite units contribute all their Get leaves).
  std::string SetKey(uint64_t set) const;
  /// Fast-AGMS join-size estimate for a two-leaf inner-join set, or -1
  /// when the set has no single-column equi-join with sketches on both
  /// sides (DESIGN.md section 11).
  double SketchJoinRows(uint64_t set) const;
  CardSource SourceOf(uint64_t set) const;
  GroupState& GroupOf(uint64_t set);
  Status OptimizeSet(uint64_t set);
  Status TryPartition(uint64_t set, uint64_t a, uint64_t b, GroupState* g,
                      bool allow_cross);
  Status GreedyPlan(uint64_t set);
  std::unique_ptr<OrcaPhysicalOp> Extract(uint64_t set);
  std::unique_ptr<OrcaPhysicalOp> BuildLeafPlan(int unit_idx,
                                                bool as_lookup,
                                                int lookup_index);

  const OrcaConfig& config_;
  StatsProvider* stats_;
  int num_refs_;
  int64_t* partitions_;
  int* groups_;
  ResourceGovernor* governor_;
  const FeedbackSnapshot* feedback_;
  int64_t* actual_overrides_;
  int64_t* sketch_overrides_;

  std::vector<Unit> units_;
  std::vector<PoolConjunct> pool_;
  std::unordered_map<int, int> unit_of_ref_;
  std::unordered_map<uint64_t, GroupState> memo_;
  std::unordered_map<uint64_t, double> rows_memo_;
  std::unordered_map<uint64_t, CardSource> rows_source_;
  int64_t budget_ = 0;
  bool budget_exhausted_ = false;
};

Status JoinSearch::AddUnit(OrcaLogicalOp* op, JoinType type,
                           uint64_t dependency,
                           std::vector<Expr*> join_conds,
                           std::vector<Expr*> local_conds, uint64_t* added) {
  if (units_.size() >= 64) {
    return Status::NotSupported("more than 64 join units in one block");
  }
  int idx = static_cast<int>(units_.size());
  Unit u;
  u.op = op;
  if (op->kind == OrcaLogicalOp::Kind::kGet) u.leaf = op->leaf;
  u.join_type = type;
  u.dependency = dependency;
  u.join_conds = std::move(join_conds);
  u.local_conds = std::move(local_conds);
  std::vector<TableRef*> leaves;
  CollectGetLeaves(op, &leaves);
  for (TableRef* leaf : leaves) unit_of_ref_[leaf->ref_id] = idx;
  units_.push_back(std::move(u));
  *added |= 1ULL << idx;
  return Status::OK();
}

Status JoinSearch::FlattenInto(OrcaLogicalOp* op, uint64_t* added,
                               std::vector<Expr*> pending_conds) {
  switch (op->kind) {
    case OrcaLogicalOp::Kind::kGet:
      return AddUnit(op, JoinType::kInner, 0, {}, std::move(pending_conds),
                     added);
    case OrcaLogicalOp::Kind::kSelect: {
      // Selection directly over a Get: local conjuncts. Over anything
      // else: hand the conjuncts to the pool via pending for the child.
      std::vector<Expr*> conds = pending_conds;
      conds.insert(conds.end(), op->conds.begin(), op->conds.end());
      OrcaLogicalOp* child = op->children[0].get();
      if (child->kind == OrcaLogicalOp::Kind::kGet) {
        return AddUnit(child, JoinType::kInner, 0, {}, std::move(conds),
                       added);
      }
      TAURUS_RETURN_IF_ERROR(FlattenInto(child, added, {}));
      for (Expr* c : conds) pool_.push_back(PoolConjunct{c, 0});
      return Status::OK();
    }
    case OrcaLogicalOp::Kind::kJoin: {
      if (op->join_type == JoinType::kInner ||
          op->join_type == JoinType::kCross) {
        TAURUS_RETURN_IF_ERROR(FlattenInto(op->children[0].get(), added, {}));
        TAURUS_RETURN_IF_ERROR(FlattenInto(op->children[1].get(), added, {}));
        for (Expr* c : op->conds) pool_.push_back(PoolConjunct{c, 0});
        for (Expr* c : pending_conds) pool_.push_back(PoolConjunct{c, 0});
        return Status::OK();
      }
      uint64_t left_mask = 0;
      TAURUS_RETURN_IF_ERROR(
          FlattenInto(op->children[0].get(), &left_mask, {}));
      *added |= left_mask;
      OrcaLogicalOp* right = op->children[1].get();
      std::vector<Expr*> local;
      if (right->kind == OrcaLogicalOp::Kind::kSelect &&
          right->children[0]->kind == OrcaLogicalOp::Kind::kGet) {
        local = right->conds;
        right = right->children[0].get();
      }
      TAURUS_RETURN_IF_ERROR(AddUnit(right, op->join_type, left_mask,
                                     op->conds, std::move(local), added));
      for (Expr* c : pending_conds) pool_.push_back(PoolConjunct{c, 0});
      return Status::OK();
    }
  }
  return Status::Internal("unreachable logical kind");
}

uint64_t JoinSearch::UnitMask(const Expr& e) const {
  std::vector<bool> refs(static_cast<size_t>(num_refs_), false);
  CollectReferencedRefs(e, &refs);
  uint64_t mask = 0;
  for (int r = 0; r < num_refs_; ++r) {
    if (!refs[static_cast<size_t>(r)]) continue;
    auto it = unit_of_ref_.find(r);
    if (it != unit_of_ref_.end()) mask |= 1ULL << it->second;
  }
  return mask;
}

Status JoinSearch::SetupUnit(Unit* unit) {
  if (unit->op->kind == OrcaLogicalOp::Kind::kGet) {
    unit->base_rows = stats_->LeafBaseRows(*unit->leaf);
    double sel = 1.0;
    for (const Expr* c : unit->local_conds) {
      sel *= stats_->ConjunctSelectivity(*c);
    }
    unit->rows = std::max(unit->base_rows * std::clamp(sel, 0.0, 1.0), 1.0);
    // Harvested actual for this (filtered) leaf overrides the histogram
    // estimate — the strongest source in the feedback precedence order.
    if (feedback_ != nullptr) {
      auto fb = feedback_->node_actuals.find(RefSetKey({unit->leaf->ref_id}));
      if (fb != feedback_->node_actuals.end()) {
        unit->rows = std::max(fb->second, 1.0);
        unit->card_source = CardSource::kActual;
        if (actual_overrides_ != nullptr) ++*actual_overrides_;
      }
    }
    // Access choice: sequential scan vs index range over a local range
    // predicate (cost-based, unlike stock MySQL's heuristics).
    unit->access = OrcaPhysicalOp::Kind::kTableScan;
    unit->access_cost = unit->base_rows * config_.cost.seq_row;
    if (unit->leaf->kind == TableRef::Kind::kBase &&
        unit->leaf->table != nullptr) {
      for (const Expr* c : unit->local_conds) {
        const Expr* col = nullptr;
        if (c->kind == Expr::Kind::kBetween && !c->negated) {
          col = c->children[0].get();
        } else if (c->kind == Expr::Kind::kBinary && IsComparisonOp(c->bop) &&
                   c->bop != BinaryOp::kNe) {
          if (c->children[0]->kind == Expr::Kind::kColumnRef) {
            col = c->children[0].get();
          } else if (c->children[1]->kind == Expr::Kind::kColumnRef) {
            col = c->children[1].get();
          }
        }
        if (col == nullptr || col->kind != Expr::Kind::kColumnRef ||
            col->ref_id != unit->leaf->ref_id) {
          continue;
        }
        for (size_t i = 0; i < unit->leaf->table->indexes.size(); ++i) {
          const IndexDef& idx = unit->leaf->table->indexes[i];
          if (idx.column_idx.empty() ||
              idx.column_idx[0] != col->column_idx) {
            continue;
          }
          double range_sel = stats_->ConjunctSelectivity(*c);
          double cost = config_.cost.index_descend +
                        range_sel * unit->base_rows * config_.cost.index_row;
          if (cost < unit->access_cost) {
            unit->access_cost = cost;
            unit->access = OrcaPhysicalOp::Kind::kIndexRangeScan;
            unit->access_index = static_cast<int>(i);
          }
        }
      }
      // Correlated "ref" access: equality binding an index's first key
      // column to a purely-outer expression (correlated subquery blocks).
      for (const Expr* c : unit->local_conds) {
        if (c->kind != Expr::Kind::kBinary || c->bop != BinaryOp::kEq) {
          continue;
        }
        for (int side = 0; side < 2; ++side) {
          const Expr& col = *c->children[static_cast<size_t>(side)];
          const Expr& other = *c->children[static_cast<size_t>(1 - side)];
          if (col.kind != Expr::Kind::kColumnRef ||
              col.ref_id != unit->leaf->ref_id) {
            continue;
          }
          std::vector<bool> other_refs(static_cast<size_t>(num_refs_),
                                       false);
          CollectReferencedRefs(other, &other_refs);
          if (unit->leaf->ref_id >= 0 &&
              other_refs[static_cast<size_t>(unit->leaf->ref_id)]) {
            continue;
          }
          bool touches_sibling_unit = false;
          for (int r = 0; r < num_refs_; ++r) {
            if (other_refs[static_cast<size_t>(r)] &&
                unit_of_ref_.count(r) != 0) {
              touches_sibling_unit = true;
            }
          }
          if (touches_sibling_unit) continue;
          for (size_t i = 0; i < unit->leaf->table->indexes.size(); ++i) {
            const IndexDef& idx = unit->leaf->table->indexes[i];
            if (idx.column_idx.empty() ||
                idx.column_idx[0] != col.column_idx) {
              continue;
            }
            double ndv = stats_->NdvOf(unit->leaf->ref_id, col.column_idx,
                                       std::max(unit->base_rows, 1.0));
            double match =
                std::max(unit->base_rows / std::max(ndv, 1.0), 1.0);
            double cost = config_.cost.index_descend +
                          match * config_.cost.index_row;
            if (cost < unit->access_cost) {
              unit->access_cost = cost;
              unit->access = OrcaPhysicalOp::Kind::kIndexLookup;
              unit->access_index = static_cast<int>(i);
            }
          }
        }
      }
    }
    return Status::OK();
  }
  // Composite unit: optimize its subtree recursively with a fresh search,
  // folding in join-cond pieces that reference only this unit.
  JoinSearch sub(config_, stats_, num_refs_, partitions_, groups_, governor_,
                 feedback_, actual_overrides_, sketch_overrides_);
  TAURUS_RETURN_IF_ERROR(sub.Flatten(unit->op));
  // Restrict join_conds to subtree-only pieces and push them in.
  for (Expr* jc : unit->join_conds) {
    uint64_t m = sub.UnitMask(*jc);
    bool subtree_only = true;
    std::vector<bool> refs(static_cast<size_t>(num_refs_), false);
    CollectReferencedRefs(*jc, &refs);
    std::vector<TableRef*> leaves;
    CollectGetLeaves(unit->op, &leaves);
    for (int r = 0; r < num_refs_; ++r) {
      if (!refs[static_cast<size_t>(r)]) continue;
      bool inside = false;
      for (TableRef* l : leaves) {
        if (l->ref_id == r) inside = true;
      }
      // Outer-block refs (not any unit) are fine; refs to sibling units
      // of the parent search are not.
      if (!inside && unit_of_ref_.count(r) != 0) subtree_only = false;
    }
    (void)m;
    if (subtree_only) sub.pool_.push_back(PoolConjunct{jc, 0});
  }
  for (PoolConjunct& c : sub.pool_) c.units = sub.UnitMask(*c.expr);
  // Fold freshly-added single-unit conjuncts into unit-local conditions.
  {
    std::vector<PoolConjunct> keep;
    for (PoolConjunct& c : sub.pool_) {
      if (c.units != 0 && std::popcount(c.units) == 1) {
        int uidx = std::countr_zero(c.units);
        Unit& su = sub.units_[static_cast<size_t>(uidx)];
        bool already = false;
        for (const Expr* lc : su.local_conds) {
          if (lc == c.expr) already = true;
        }
        if (!already) su.local_conds.push_back(c.expr);
      } else {
        keep.push_back(c);
      }
    }
    sub.pool_ = std::move(keep);
  }
  TAURUS_ASSIGN_OR_RETURN(unit->composite_plan, sub.Run());
  unit->rows = std::max(unit->composite_plan->rows, 1.0);
  unit->base_rows = unit->rows;
  unit->access_cost = unit->composite_plan->cost;
  unit->card_source = unit->composite_plan->card_source;
  return Status::OK();
}

Status JoinSearch::Flatten(OrcaLogicalOp* root) {
  uint64_t added = 0;
  TAURUS_RETURN_IF_ERROR(FlattenInto(root, &added, {}));
  for (PoolConjunct& c : pool_) c.units = UnitMask(*c.expr);
  // Single-unit pool conjuncts fold into that unit's local conditions.
  std::vector<PoolConjunct> keep;
  for (PoolConjunct& c : pool_) {
    if (c.units != 0 && std::popcount(c.units) == 1) {
      int u = std::countr_zero(c.units);
      units_[static_cast<size_t>(u)].local_conds.push_back(c.expr);
    } else {
      keep.push_back(c);
    }
  }
  pool_ = std::move(keep);
  return Status::OK();
}

bool JoinSearch::Admissible(uint64_t set) const {
  if (std::popcount(set) == 1) return true;
  for (size_t u = 0; u < units_.size(); ++u) {
    if ((set & (1ULL << u)) == 0) continue;
    if (units_[u].join_type == JoinType::kInner) continue;
    if ((units_[u].dependency & ~set) != 0) return false;
  }
  return true;
}

std::vector<Expr*> JoinSearch::CrossConds(uint64_t a, uint64_t b) const {
  std::vector<Expr*> out;
  uint64_t both = a | b;
  for (const PoolConjunct& c : pool_) {
    if (c.units == 0) continue;
    if ((c.units & ~both) != 0) continue;
    if ((c.units & a) == 0 || (c.units & b) == 0) continue;
    out.push_back(c.expr);
  }
  // Dependent unit joined as the whole right side contributes its ON.
  if (std::popcount(b) == 1) {
    const Unit& u = units_[static_cast<size_t>(std::countr_zero(b))];
    if (u.join_type != JoinType::kInner) {
      for (Expr* jc : u.join_conds) {
        uint64_t m = UnitMask(*jc);
        if (m == b) continue;  // folded into the unit already
        out.push_back(jc);
      }
    }
  }
  return out;
}

double JoinSearch::CrossSelectivity(const std::vector<Expr*>& conds) const {
  double sel = 1.0;
  for (const Expr* c : conds) {
    if (StatsProvider::IsColumnEquality(*c)) {
      sel *= stats_->EqJoinSelectivity(*c);
    } else {
      sel *= stats_->ConjunctSelectivity(*c);
    }
  }
  return std::clamp(sel, 0.0, 1.0);
}

std::string JoinSearch::SetKey(uint64_t set) const {
  std::vector<int> refs;
  for (size_t u = 0; u < units_.size(); ++u) {
    if ((set & (1ULL << u)) == 0) continue;
    if (units_[u].leaf != nullptr) {
      refs.push_back(units_[u].leaf->ref_id);
    } else {
      std::vector<TableRef*> leaves;
      CollectGetLeaves(units_[u].op, &leaves);
      for (const TableRef* leaf : leaves) refs.push_back(leaf->ref_id);
    }
  }
  return RefSetKey(std::move(refs));
}

double JoinSearch::SketchJoinRows(uint64_t set) const {
  if (feedback_ == nullptr || feedback_->sketches.empty()) return -1.0;
  if (std::popcount(set) != 2) return -1.0;
  int ua = std::countr_zero(set);
  int ub = std::countr_zero(set & (set - 1));
  const Unit& a = units_[static_cast<size_t>(ua)];
  const Unit& b = units_[static_cast<size_t>(ub)];
  if (a.leaf == nullptr || b.leaf == nullptr) return -1.0;
  if (a.join_type != JoinType::kInner || b.join_type != JoinType::kInner) {
    return -1.0;
  }
  // The sketches describe single join-key columns, so the set must be
  // joined by exactly one single-column equality (other non-equality
  // conjuncts are applied by the caller as selectivities).
  const Expr* eq = nullptr;
  double other_sel = 1.0;
  for (const PoolConjunct& c : pool_) {
    if (c.units == 0 || (c.units & ~set) != 0) continue;
    if (std::popcount(c.units) < 2) continue;
    if (StatsProvider::IsColumnEquality(*c.expr)) {
      if (eq != nullptr) return -1.0;  // multi-column join key
      eq = c.expr;
    } else {
      other_sel *= stats_->ConjunctSelectivity(*c.expr);
    }
  }
  if (eq == nullptr) return -1.0;
  const Expr& l = *eq->children[0];
  const Expr& r = *eq->children[1];
  if (l.kind != Expr::Kind::kColumnRef || r.kind != Expr::Kind::kColumnRef) {
    return -1.0;
  }
  auto find_sketch = [&](const Expr& col) -> const AgmsSketch* {
    if (col.ref_id != a.leaf->ref_id && col.ref_id != b.leaf->ref_id) {
      return nullptr;
    }
    auto it = feedback_->sketches.find(
        SketchSet::StreamKey(col.ref_id, col.column_idx));
    return it != feedback_->sketches.end() ? it->second.get() : nullptr;
  };
  const AgmsSketch* sl = find_sketch(l);
  const AgmsSketch* sr = find_sketch(r);
  if (sl == nullptr || sr == nullptr || sl == sr) return -1.0;
  return std::max(sl->JoinSizeEstimate(*sr), 1.0) *
         std::clamp(other_sel, 0.0, 1.0);
}

CardSource JoinSearch::SourceOf(uint64_t set) const {
  auto it = rows_source_.find(set);
  return it != rows_source_.end() ? it->second : CardSource::kHistogram;
}

double JoinSearch::Rows(uint64_t set) {
  auto it = rows_memo_.find(set);
  if (it != rows_memo_.end()) return it->second;
  double rows;
  CardSource source = CardSource::kHistogram;
  if (std::popcount(set) == 1) {
    const Unit& u = units_[static_cast<size_t>(std::countr_zero(set))];
    rows = u.rows;
    source = u.card_source;
  } else if (feedback_ != nullptr &&
             feedback_->node_actuals.count(SetKey(set)) != 0) {
    // A prior execution measured this exact sub-join: its actual output
    // cardinality beats any estimate.
    rows = std::max(feedback_->node_actuals.at(SetKey(set)), 1.0);
    source = CardSource::kActual;
    if (actual_overrides_ != nullptr) ++*actual_overrides_;
  } else {
    // Canonical decomposition: peel the highest dependent unit whose
    // dependency is satisfied; otherwise all-inner product formula.
    int dependent = -1;
    for (int u = static_cast<int>(units_.size()) - 1; u >= 0; --u) {
      uint64_t bit = 1ULL << u;
      if ((set & bit) == 0) continue;
      if (units_[static_cast<size_t>(u)].join_type == JoinType::kInner) {
        continue;
      }
      if ((units_[static_cast<size_t>(u)].dependency & ~(set & ~bit)) == 0) {
        dependent = u;
        break;
      }
    }
    if (dependent >= 0) {
      uint64_t bit = 1ULL << dependent;
      const Unit& u = units_[static_cast<size_t>(dependent)];
      double base = Rows(set & ~bit);
      double sel = CrossSelectivity(CrossConds(set & ~bit, bit));
      double inner_est = base * u.rows * sel;
      switch (u.join_type) {
        case JoinType::kSemi:
          rows = std::min(base, std::max(inner_est, 1.0));
          break;
        case JoinType::kAntiSemi:
          rows = std::max(base - std::min(base, inner_est), 1.0);
          break;
        case JoinType::kLeft:
          rows = std::max(inner_est, base);
          break;
        default:
          rows = inner_est;
          break;
      }
    } else {
      // Second preference: a Fast-AGMS join-size estimate for a two-leaf
      // equi-join whose key streams were sketched during a prior
      // execution; histogram product formula otherwise.
      double sketch_rows = SketchJoinRows(set);
      if (sketch_rows >= 0.0) {
        rows = sketch_rows;
        source = CardSource::kSketch;
        if (sketch_overrides_ != nullptr) ++*sketch_overrides_;
      } else {
        rows = 1.0;
        for (size_t u = 0; u < units_.size(); ++u) {
          if (set & (1ULL << u)) rows *= units_[u].rows;
        }
        for (const PoolConjunct& c : pool_) {
          if (c.units == 0 || (c.units & ~set) != 0) continue;
          if (std::popcount(c.units) < 2) continue;
          if (StatsProvider::IsColumnEquality(*c.expr)) {
            rows *= stats_->EqJoinSelectivity(*c.expr);
          } else {
            rows *= stats_->ConjunctSelectivity(*c.expr);
          }
        }
      }
    }
  }
  rows = std::max(rows, 1.0);
  rows_memo_[set] = rows;
  rows_source_[set] = source;
  return rows;
}

GroupState& JoinSearch::GroupOf(uint64_t set) {
  auto [it, inserted] = memo_.try_emplace(set);
  if (inserted) {
    it->second.id = (*groups_)++;
  }
  return it->second;
}

Status JoinSearch::TryPartition(uint64_t set, uint64_t a, uint64_t b,
                                GroupState* g, bool allow_cross) {
  if (!Admissible(a) || !Admissible(b)) return Status::OK();
  JoinType jt = JoinType::kInner;
  if (std::popcount(b) == 1) {
    const Unit& u = units_[static_cast<size_t>(std::countr_zero(b))];
    if (u.join_type != JoinType::kInner) {
      if ((u.dependency & ~a) != 0) return Status::OK();
      jt = u.join_type;
    }
  } else {
    // A non-singleton right side must resolve its dependents internally.
    for (size_t u = 0; u < units_.size(); ++u) {
      if ((b & (1ULL << u)) == 0) continue;
      if (units_[u].join_type != JoinType::kInner &&
          (units_[u].dependency & ~b) != 0) {
        return Status::OK();
      }
    }
  }
  // Dependent units in A must be resolved inside A.
  for (size_t u = 0; u < units_.size(); ++u) {
    if ((a & (1ULL << u)) == 0) continue;
    if (units_[u].join_type != JoinType::kInner &&
        (units_[u].dependency & ~a) != 0) {
      return Status::OK();
    }
  }

  ++(*partitions_);
  ++budget_;
  if (governor_ != nullptr) {
    TAURUS_RETURN_IF_ERROR(governor_->ChargePartitionPair());
  }

  TAURUS_RETURN_IF_ERROR(OptimizeSet(a));
  TAURUS_RETURN_IF_ERROR(OptimizeSet(b));
  GroupState& ga = GroupOf(a);
  GroupState& gb = GroupOf(b);
  if (ga.cost == kInf || gb.cost == kInf) return Status::OK();

  std::vector<Expr*> conds = CrossConds(a, b);
  bool has_equality = false;
  for (const Expr* c : conds) {
    if (StatsProvider::IsColumnEquality(*c)) has_equality = true;
  }
  // Require connectivity for inner joins unless the caller has determined
  // that only cross products remain.
  if (!allow_cross && jt == JoinType::kInner && conds.empty()) {
    return Status::OK();
  }

  double out_rows = Rows(set);
  double rows_a = Rows(a);
  double rows_b = Rows(b);
  const CostParams& cp = config_.cost;

  // Hash join: build on the right (Orca's convention).
  if (has_equality) {
    double cost = ga.cost + gb.cost + rows_b * cp.hash_build +
                  rows_a * cp.hash_probe + out_rows * cp.row_out;
    if (cost < g->cost) {
      g->cost = cost;
      g->is_leaf = false;
      g->left = a;
      g->right = b;
      g->impl = OrcaPhysicalOp::Kind::kHashJoin;
      g->join_type = jt;
      g->inner_index = -1;
    }
  }

  // Index nested-loop join: right side is a single base leaf with an index
  // whose first key column is bound by one of the equalities.
  if (config_.enable_index_nlj && std::popcount(b) == 1) {
    const Unit& u = units_[static_cast<size_t>(std::countr_zero(b))];
    if (u.leaf != nullptr && u.leaf->kind == TableRef::Kind::kBase &&
        u.leaf->table != nullptr) {
      for (size_t i = 0; i < u.leaf->table->indexes.size(); ++i) {
        const IndexDef& idx = u.leaf->table->indexes[i];
        if (idx.column_idx.empty()) continue;
        bool bound = false;
        for (const Expr* c : conds) {
          if (c->kind != Expr::Kind::kBinary || c->bop != BinaryOp::kEq) {
            continue;
          }
          for (int side = 0; side < 2; ++side) {
            const Expr& col = *c->children[static_cast<size_t>(side)];
            if (col.kind == Expr::Kind::kColumnRef &&
                col.ref_id == u.leaf->ref_id &&
                col.column_idx == idx.column_idx[0]) {
              bound = true;
            }
          }
        }
        if (!bound) continue;
        double ndv = stats_->NdvOf(u.leaf->ref_id, idx.column_idx[0],
                                   std::max(u.base_rows, 1.0));
        double match = std::max(u.base_rows / std::max(ndv, 1.0), 1.0);
        double cost = ga.cost +
                      rows_a * (cp.index_descend + match * cp.index_row) +
                      out_rows * cp.row_out;
        if (cost < g->cost) {
          g->cost = cost;
          g->is_leaf = false;
          g->left = a;
          g->right = b;
          g->impl = OrcaPhysicalOp::Kind::kNLJoin;
          g->join_type = jt;
          g->inner_index = static_cast<int>(i);
          g->inner_lookup_cost =
              rows_a * (cp.index_descend + match * cp.index_row);
        }
      }
    }
  }

  // Plain nested-loop join (inner side re-executed per outer row).
  {
    double inner_cost = std::max(gb.cost, 1.0);
    double cost =
        ga.cost + rows_a * inner_cost + out_rows * cp.row_out;
    if (cost < g->cost) {
      g->cost = cost;
      g->is_leaf = false;
      g->left = a;
      g->right = b;
      g->impl = OrcaPhysicalOp::Kind::kNLJoin;
      g->join_type = jt;
      g->inner_index = -1;
    }
  }
  return Status::OK();
}

Status JoinSearch::OptimizeSet(uint64_t set) {
  TAURUS_FAULT_POINT("orca.memo_explore");
  GroupState& g = GroupOf(set);
  if (governor_ != nullptr) {
    TAURUS_RETURN_IF_ERROR(governor_->ChargeMemoGroups(*groups_));
  }
  if (g.done) return Status::OK();
  g.done = true;  // set first; recursion on subsets only (strictly smaller)
  g.rows = Rows(set);

  if (std::popcount(set) == 1) {
    int u = std::countr_zero(set);
    g.is_leaf = true;
    g.leaf_unit = u;
    g.cost = units_[static_cast<size_t>(u)].access_cost;
    return Status::OK();
  }

  int64_t budget_cap =
      config_.strategy == JoinSearchStrategy::kExhaustive2
          ? config_.exhaustive2_pair_budget
          : config_.exhaustive_pair_budget;
  if (config_.strategy == JoinSearchStrategy::kGreedy ||
      budget_exhausted_ || budget_ > budget_cap) {
    budget_exhausted_ = budget_ > budget_cap || budget_exhausted_;
    return GreedyPlan(set);
  }

  bool bushy = config_.strategy == JoinSearchStrategy::kExhaustive2 &&
               config_.enable_bushy;

  for (int pass = 0; pass < 2 && g.cost == kInf; ++pass) {
    // pass 0: connected partitions only; pass 1: allow cross products.
    if (bushy) {
      // Enumerate proper subsets a of set (canonicalized by containing the
      // lowest bit), try both orientations.
      uint64_t low = set & (~set + 1);
      for (uint64_t a = (set - 1) & set; a != 0; a = (a - 1) & set) {
        if ((a & low) == 0) continue;
        uint64_t b = set & ~a;
        if (pass == 0 && CrossConds(a, b).empty()) continue;
        TAURUS_RETURN_IF_ERROR(TryPartition(set, a, b, &g, pass == 1));
        TAURUS_RETURN_IF_ERROR(TryPartition(set, b, a, &g, pass == 1));
        if (budget_ > budget_cap) break;
      }
    } else {
      // Linear: the right side is always a single unit.
      for (size_t u = 0; u < units_.size(); ++u) {
        uint64_t bit = 1ULL << u;
        if ((set & bit) == 0) continue;
        uint64_t rest = set & ~bit;
        if (pass == 0 && CrossConds(rest, bit).empty()) continue;
        TAURUS_RETURN_IF_ERROR(TryPartition(set, rest, bit, &g, pass == 1));
        // Commuted orientation for inner units (hash-join side choice).
        if (units_[u].join_type == JoinType::kInner) {
          TAURUS_RETURN_IF_ERROR(TryPartition(set, bit, rest, &g, pass == 1));
        }
        if (budget_ > budget_cap) break;
      }
    }
  }
  if (g.cost == kInf) {
    // Dependency structure defeated the enumerator; fall back to greedy.
    g.done = false;
    return GreedyPlan(set);
  }
  return Status::OK();
}

Status JoinSearch::GreedyPlan(uint64_t set) {
  GroupState& g = GroupOf(set);
  if (governor_ != nullptr) {
    TAURUS_RETURN_IF_ERROR(governor_->ChargeMemoGroups(*groups_));
  }
  if (g.done && g.cost < kInf) return Status::OK();
  g.done = true;
  g.rows = Rows(set);
  if (std::popcount(set) == 1) {
    int u = std::countr_zero(set);
    g.is_leaf = true;
    g.leaf_unit = u;
    g.cost = units_[static_cast<size_t>(u)].access_cost;
    return Status::OK();
  }
  // Greedy left-deep: repeatedly find the cheapest last join (b singleton)
  // by recursing greedily on set \ b.
  double best_cost = kInf;
  uint64_t best_b = 0;
  GroupState trial;
  for (size_t u = 0; u < units_.size(); ++u) {
    uint64_t bit = 1ULL << u;
    if ((set & bit) == 0) continue;
    uint64_t rest = set & ~bit;
    if (!Admissible(rest)) continue;
    if (units_[u].join_type != JoinType::kInner &&
        (units_[u].dependency & ~rest) != 0) {
      continue;
    }
    // Dependents inside rest must stay resolvable.
    bool ok = true;
    for (size_t v = 0; v < units_.size(); ++v) {
      if ((rest & (1ULL << v)) == 0) continue;
      if (units_[v].join_type != JoinType::kInner &&
          (units_[v].dependency & ~(rest & ~(1ULL << v))) != 0) {
        ok = false;
      }
    }
    if (!ok) continue;
    if (CrossConds(rest, bit).empty() &&
        units_[u].join_type == JoinType::kInner) {
      continue;  // avoid cross products while alternatives exist
    }
    GroupState cand;
    cand.cost = kInf;
    TAURUS_RETURN_IF_ERROR(GreedyPlan(rest));
    TAURUS_RETURN_IF_ERROR(OptimizeSet(bit));
    TAURUS_RETURN_IF_ERROR(TryPartition(set, rest, bit, &cand, false));
    if (cand.cost < best_cost) {
      best_cost = cand.cost;
      best_b = bit;
      trial = cand;
    }
  }
  if (best_b == 0) {
    // All extensions were cross products; allow them.
    for (size_t u = 0; u < units_.size(); ++u) {
      uint64_t bit = 1ULL << u;
      if ((set & bit) == 0) continue;
      uint64_t rest = set & ~bit;
      if (!Admissible(rest)) continue;
      if (units_[u].join_type != JoinType::kInner &&
          (units_[u].dependency & ~rest) != 0) {
        continue;
      }
      GroupState cand;
      cand.cost = kInf;
      TAURUS_RETURN_IF_ERROR(GreedyPlan(rest));
      TAURUS_RETURN_IF_ERROR(OptimizeSet(bit));
      TAURUS_RETURN_IF_ERROR(TryPartition(set, rest, bit, &cand, true));
      if (cand.cost < best_cost) {
        best_cost = cand.cost;
        best_b = bit;
        trial = cand;
      }
    }
  }
  if (best_b == 0) {
    return Status::Internal("greedy join ordering found no extension");
  }
  trial.id = g.id;
  trial.rows = g.rows;
  trial.done = true;
  g = trial;
  return Status::OK();
}

std::unique_ptr<OrcaPhysicalOp> JoinSearch::BuildLeafPlan(int unit_idx,
                                                          bool as_lookup,
                                                          int lookup_index) {
  Unit& u = units_[static_cast<size_t>(unit_idx)];
  if (u.composite_plan != nullptr) {
    return std::move(u.composite_plan);
  }
  auto op = std::make_unique<OrcaPhysicalOp>();
  op->leaf = u.leaf;
  op->filters = u.local_conds;
  op->rows = u.rows;
  op->cost = u.access_cost;
  op->card_source = u.card_source;
  if (as_lookup) {
    op->kind = OrcaPhysicalOp::Kind::kIndexLookup;
    op->index_id = lookup_index;
  } else {
    op->kind = u.access;
    op->index_id = u.access_index;
  }
  return op;
}

std::unique_ptr<OrcaPhysicalOp> JoinSearch::Extract(uint64_t set) {
  GroupState& g = GroupOf(set);
  if (g.is_leaf) {
    auto op = BuildLeafPlan(g.leaf_unit, false, -1);
    op->memo_group = g.id;
    return op;
  }
  auto op = std::make_unique<OrcaPhysicalOp>();
  op->kind = g.impl;
  op->join_type = g.join_type;
  op->rows = g.rows;
  op->cost = g.cost;
  op->card_source = SourceOf(set);
  op->memo_group = g.id;
  op->conds = CrossConds(g.left, g.right);
  op->children.push_back(Extract(g.left));
  if (g.inner_index >= 0) {
    GroupState& gr = GroupOf(g.right);
    auto right = BuildLeafPlan(gr.leaf_unit, true, g.inner_index);
    right->memo_group = gr.id;
    right->cost = g.inner_lookup_cost;
    op->children.push_back(std::move(right));
  } else {
    op->children.push_back(Extract(g.right));
  }
  return op;
}

Result<std::unique_ptr<OrcaPhysicalOp>> JoinSearch::Run() {
  if (units_.empty()) {
    return Status::Internal("no units to optimize");
  }
  for (Unit& u : units_) {
    TAURUS_RETURN_IF_ERROR(SetupUnit(&u));
  }
  uint64_t full = units_.size() == 64
                      ? ~0ULL
                      : ((1ULL << units_.size()) - 1);
  TAURUS_RETURN_IF_ERROR(OptimizeSet(full));
  GroupState& g = GroupOf(full);
  if (g.cost == kInf) {
    return Status::Internal("optimizer produced no plan");
  }
  return Extract(full);
}

}  // namespace

Result<std::unique_ptr<OrcaPhysicalOp>> OrcaOptimizer::Optimize(
    OrcaLogicalOp* root) {
  JoinSearch search(config_, stats_, num_refs_, &partitions_evaluated_,
                    &num_groups_, governor_, feedback_, &actual_overrides_,
                    &sketch_overrides_);
  {
    ScopedSpan build_span(tracer_, "memo.build");
    TAURUS_RETURN_IF_ERROR(search.Flatten(root));
  }
  ScopedSpan search_span(tracer_, "memo.join_search");
  auto physical = search.Run();
  search_span.End();
  search_span.Attr("memo_groups", std::to_string(num_groups_));
  search_span.Attr("partitions", std::to_string(partitions_evaluated_));
  return physical;
}

}  // namespace taurus
