#include "orca/physical.h"

#include <cstdio>

namespace taurus {

std::string OrcaPhysicalOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  char est[64];
  std::snprintf(est, sizeof(est), " (rows=%.0f cost=%.0f)", rows, cost);
  std::string out = pad;
  switch (kind) {
    case Kind::kTableScan:
      out += "TableScan:" + std::to_string(memo_group) + " " +
             (leaf ? leaf->alias : "?");
      break;
    case Kind::kIndexRangeScan:
      out += "IndexScan:" + std::to_string(memo_group) + " " +
             (leaf ? leaf->alias : "?");
      break;
    case Kind::kIndexLookup:
      out += "IndexLookup:" + std::to_string(memo_group) + " " +
             (leaf ? leaf->alias : "?");
      break;
    case Kind::kNLJoin:
      out += std::string("NLJoin[") + JoinTypeName(join_type) + "]:" +
             std::to_string(memo_group);
      break;
    case Kind::kHashJoin:
      out += std::string("HashJoin[") + JoinTypeName(join_type) + "]:" +
             std::to_string(memo_group);
      break;
  }
  out += est;
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

}  // namespace taurus
