#ifndef TAURUS_ORCA_LOGICAL_H_
#define TAURUS_ORCA_LOGICAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "parser/ast.h"

namespace taurus {

/// Orca logical operator tree — what the Parse Tree Converter produces
/// (Section 4.1). Selection pushdown has already happened by construction:
/// single-table conjuncts live in Select nodes directly above their Gets
/// (the paper's "predicate segregation"), and only genuine join predicates
/// sit on Join nodes, as in the paper's Listing 4.
struct OrcaLogicalOp {
  enum class Kind { kGet, kSelect, kJoin };

  Kind kind = Kind::kGet;

  // kGet: the table descriptor. `leaf` doubles as the pointer to MySQL's
  // TABLE_LIST entry (Section 4.1) — it is carried into the physical plan
  // and used by the plan converter's query-block discovery.
  TableRef* leaf = nullptr;
  /// Relation OID obtained from the metadata provider during
  /// "embellishment" (Section 4.1).
  int64_t relation_oid = -1;

  // kSelect / kJoin predicate conjuncts. Join conjuncts may carry
  // expression OIDs assigned by the metadata provider.
  std::vector<Expr*> conds;
  /// Expression OIDs parallel to `conds` (kInvalidOid where no cube point
  /// applies, e.g. BETWEEN).
  std::vector<int64_t> cond_oids;

  // kJoin
  JoinType join_type = JoinType::kInner;

  std::vector<std::unique_ptr<OrcaLogicalOp>> children;

  /// Pretty-printer for tests and debugging.
  std::string ToString(int indent = 0) const;
};

}  // namespace taurus

#endif  // TAURUS_ORCA_LOGICAL_H_
