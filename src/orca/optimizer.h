#ifndef TAURUS_ORCA_OPTIMIZER_H_
#define TAURUS_ORCA_OPTIMIZER_H_

#include <memory>

#include "common/resource_budget.h"
#include "common/result.h"
#include "feedback/feedback_store.h"
#include "myopt/cardinality.h"
#include "obs/trace.h"
#include "orca/logical.h"
#include "orca/orca.h"
#include "orca/physical.h"

namespace taurus {

/// The Orca-style cost-based optimizer core: memo-based join enumeration
/// over a logical operator tree, producing a physical plan with cost-based
/// join methods (hash / nested-loop / index nested-loop), cost-based
/// access paths, and — under EXHAUSTIVE2 — bushy join trees. Statistics
/// flow exclusively through the provided StatsProvider (on the integration
/// path, an MdpStatsProvider backed by the metadata provider).
class OrcaOptimizer {
 public:
  /// `governor`, when non-null, bounds the memo search (group/pair caps and
  /// the wall-clock deadline); exceeding a limit aborts with
  /// kResourceExhausted so the caller can fall back. `tracer`, when
  /// non-null, records memo.build / memo.join_search sub-spans.
  /// `feedback`, when non-null, is the harvested execution feedback for the
  /// statement being optimized: actual cardinalities by ref-set key
  /// override the memo's histogram estimates, and Fast-AGMS sketches serve
  /// join-size estimates where no actual is known (precedence actual >
  /// sketch > histogram, DESIGN.md section 11).
  OrcaOptimizer(const OrcaConfig& config, StatsProvider* stats, int num_refs,
                ResourceGovernor* governor = nullptr, Tracer* tracer = nullptr,
                const FeedbackSnapshot* feedback = nullptr)
      : config_(config),
        stats_(stats),
        num_refs_(num_refs),
        governor_(governor),
        tracer_(tracer),
        feedback_(feedback) {}

  /// Optimizes one block's logical tree into a physical tree.
  Result<std::unique_ptr<OrcaPhysicalOp>> Optimize(OrcaLogicalOp* root);

  /// Number of (left, right) partition pairs costed — a proxy for
  /// optimization effort, reported by the Table 1 bench.
  int64_t partitions_evaluated() const { return partitions_evaluated_; }
  /// Number of memo groups created.
  int num_groups() const { return num_groups_; }
  /// Cardinalities taken from harvested actuals / sketches during this
  /// optimization (0 when no feedback snapshot was supplied).
  int64_t actual_overrides() const { return actual_overrides_; }
  int64_t sketch_overrides() const { return sketch_overrides_; }

 private:
  const OrcaConfig& config_;
  StatsProvider* stats_;
  int num_refs_;
  ResourceGovernor* governor_;
  Tracer* tracer_;
  const FeedbackSnapshot* feedback_;
  int64_t partitions_evaluated_ = 0;
  int num_groups_ = 0;
  int64_t actual_overrides_ = 0;
  int64_t sketch_overrides_ = 0;
};

}  // namespace taurus

#endif  // TAURUS_ORCA_OPTIMIZER_H_
