// Plan explorer: an interactive mini-CLI over the TPC-H database. Type a
// SELECT statement to see both optimizers' EXPLAIN trees and execution
// timings; or `qN` (e.g. q17) for a stock TPC-H query.
//
// Usage: plan_explorer [scale_factor]      (default 0.002)
// Commands:  qN | threshold N | strategy greedy|exhaustive|exhaustive2 |
//            <any SELECT ...> | SHOW <...> | quit
//
// SHOW statements (SHOW DIGESTS, SHOW FLIGHT RECORDER, SHOW PROFILE FOR
// <seq>, SHOW STATUS LIKE '...') run once against the engine and print
// their rows — handy for inspecting the digest table the explored
// queries have been building up.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "workloads/tpch.h"

using namespace taurus;  // NOLINT: example brevity

namespace {

void RunBoth(Database* db, const std::string& sql) {
  for (OptimizerPath path : {OptimizerPath::kMySql, OptimizerPath::kOrca}) {
    const char* label =
        path == OptimizerPath::kOrca ? "Orca detour" : "MySQL optimizer";
    auto explain = db->Explain(sql, path);
    if (!explain.ok()) {
      std::printf("[%s] %s\n", label, explain.status().ToString().c_str());
      continue;
    }
    std::printf("----- %s -----\n%s", label, explain->c_str());
    auto result = db->Query(sql, path);
    if (result.ok()) {
      std::printf("(%zu rows, optimize %.2f ms, execute %.2f ms)\n\n",
                  result->rows.size(), result->optimize_ms,
                  result->execute_ms);
    } else {
      std::printf("(execution failed: %s)\n\n",
                  result.status().ToString().c_str());
    }
  }
}

// SHOW statements have no EXPLAIN tree and run on one path; print rows.
void RunShow(Database* db, const std::string& sql) {
  auto result = db->Query(sql);
  if (!result.ok()) {
    std::printf("%s\n", result.status().ToString().c_str());
    return;
  }
  for (const auto& row : result->rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : " | ", row[i].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n\n", result->rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.002;
  Database db;
  auto st = SetupTpch(&db, sf);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("TPC-H at scale %g loaded. Enter SQL, qN, threshold N, "
              "strategy <s>, or quit.\n",
              sf);
  std::string line;
  while (std::printf("> "), std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    if (line[0] == 'q' && line.size() <= 3 &&
        isdigit(static_cast<unsigned char>(line[1]))) {
      int n = std::atoi(line.c_str() + 1);
      if (n >= 1 && n <= 22) {
        RunBoth(&db, TpchQueries()[static_cast<size_t>(n - 1)]);
      } else {
        std::printf("q1..q22\n");
      }
      continue;
    }
    if (line.rfind("threshold ", 0) == 0) {
      db.router_config().complex_query_threshold = std::atoi(line.c_str() + 10);
      std::printf("complex query threshold = %d\n",
                  db.router_config().complex_query_threshold);
      continue;
    }
    if (line.rfind("strategy ", 0) == 0) {
      std::string s = line.substr(9);
      if (s == "greedy") {
        db.orca_config().strategy = JoinSearchStrategy::kGreedy;
      } else if (s == "exhaustive") {
        db.orca_config().strategy = JoinSearchStrategy::kExhaustive;
      } else {
        db.orca_config().strategy = JoinSearchStrategy::kExhaustive2;
      }
      std::printf("orca strategy = %s\n",
                  JoinSearchStrategyName(db.orca_config().strategy));
      continue;
    }
    if (line.rfind("SHOW", 0) == 0 || line.rfind("show", 0) == 0) {
      RunShow(&db, line);
      continue;
    }
    RunBoth(&db, line);
  }
  return 0;
}
