// TPC-H demo: loads a small TPC-H database and walks through the paper's
// Section 4 example (Q17): EXPLAIN on the MySQL path, then the Orca
// detour — showing the Orca-assisted plan with its correlated derived
// table ("Materialize (invalidate on row from part)", Listing 7) — plus a
// side-by-side timing of a few interesting queries.
//
// Usage: tpch_demo [scale_factor]   (default 0.002)

#include <cstdio>
#include <cstdlib>

#include "workloads/tpch.h"

using taurus::Database;
using taurus::OptimizerPath;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.002;
  Database db;
  auto st = taurus::SetupTpch(&db, sf);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("TPC-H loaded at scale factor %g\n\n", sf);

  const std::string& q17 = taurus::TpchQueries()[16];
  std::printf("----- TPC-H Q17, MySQL optimizer -----\n");
  auto mysql_explain = db.Explain(q17, OptimizerPath::kMySql);
  std::printf("%s\n", mysql_explain.ok()
                          ? mysql_explain->c_str()
                          : mysql_explain.status().ToString().c_str());
  std::printf("----- TPC-H Q17, Orca detour -----\n");
  auto orca_explain = db.Explain(q17, OptimizerPath::kOrca);
  std::printf("%s\n", orca_explain.ok()
                          ? orca_explain->c_str()
                          : orca_explain.status().ToString().c_str());

  std::printf("----- timings (ms) -----\n");
  std::printf("%-6s %10s %10s %8s\n", "query", "mysql", "orca", "ratio");
  for (int q : {3, 4, 12, 13, 16, 17, 21}) {
    const std::string& sql = taurus::TpchQueries()[static_cast<size_t>(q - 1)];
    auto m = db.Query(sql, OptimizerPath::kMySql);
    auto o = db.Query(sql, OptimizerPath::kOrca);
    if (!m.ok() || !o.ok()) {
      std::printf("Q%-5d failed\n", q);
      continue;
    }
    double ratio = o->execute_ms > 0 ? m->execute_ms / o->execute_ms : 0;
    std::printf("Q%-5d %10.2f %10.2f %7.2fx\n", q, m->execute_ms,
                o->execute_ms, ratio);
  }
  return 0;
}
