// Quickstart: create a schema, load rows, and run the same query through
// the MySQL-style optimizer and through the Orca detour.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "engine/database.h"

using taurus::Database;
using taurus::OptimizerPath;
using taurus::Row;
using taurus::Value;

namespace {

void Check(const taurus::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;

  // --- DDL through SQL, exactly like a MySQL session. ---
  Check(db.ExecuteSql(
            "CREATE TABLE dept (d_id INT NOT NULL PRIMARY KEY, "
            "d_name VARCHAR(30) NOT NULL)"),
        "create dept");
  Check(db.ExecuteSql(
            "CREATE TABLE emp (e_id INT NOT NULL PRIMARY KEY, "
            "e_dept INT NOT NULL, e_name VARCHAR(30) NOT NULL, "
            "e_salary DOUBLE NOT NULL)"),
        "create emp");
  Check(db.ExecuteSql("CREATE INDEX emp_dept_idx ON emp (e_dept)"),
        "create index");

  // --- Bulk load + ANALYZE (stats feed both optimizers). ---
  std::vector<Row> depts;
  const char* names[] = {"engineering", "sales", "support", "finance"};
  for (int i = 0; i < 4; ++i) {
    depts.push_back({Value::Int(i), Value::Str(names[i])});
  }
  Check(db.BulkLoad("dept", std::move(depts)), "load dept");
  std::vector<Row> emps;
  for (int i = 0; i < 1000; ++i) {
    emps.push_back({Value::Int(i), Value::Int(i % 4),
                    Value::Str("emp" + std::to_string(i)),
                    Value::Double(40000 + 13 * (i % 700))});
  }
  Check(db.BulkLoad("emp", std::move(emps)), "load emp");
  Check(db.AnalyzeAll(), "analyze");

  const std::string sql =
      "SELECT d_name, COUNT(*) AS headcount, AVG(e_salary) AS avg_salary "
      "FROM dept JOIN emp ON e_dept = d_id "
      "WHERE e_salary > 45000 GROUP BY d_name ORDER BY headcount DESC";

  // --- Same query, both optimizers. ---
  for (OptimizerPath path : {OptimizerPath::kMySql, OptimizerPath::kOrca}) {
    auto result = db.Query(sql, path);
    Check(result.status(), "query");
    std::printf("=== %s ===\n",
                path == OptimizerPath::kOrca ? "Orca detour" : "MySQL path");
    std::printf("optimize %.2f ms, execute %.2f ms, %lld rows scanned\n",
                result->optimize_ms, result->execute_ms,
                static_cast<long long>(result->rows_scanned));
    for (size_t c = 0; c < result->columns.size(); ++c) {
      std::printf("%s%s", c ? " | " : "", result->columns[c].c_str());
    }
    std::printf("\n");
    for (const Row& row : result->rows) {
      std::printf("%s\n", taurus::RowToString(row).c_str());
    }
    auto explain = db.Explain(sql, path);
    Check(explain.status(), "explain");
    std::printf("%s\n", explain->c_str());
  }

  // --- The skeleton-plan cache: a repeated statement skips the optimizer.
  // Whitespace/case variants share the fingerprint, and DDL or ANALYZE
  // bumps a catalog version that invalidates affected entries.
  auto warm = db.Query("select D_NAME, count(*) as headcount, "
                       "avg(E_SALARY) as avg_salary "
                       "from DEPT join EMP on e_dept = d_id "
                       "where e_salary > 45000 group by d_name "
                       "order by headcount desc",
                       OptimizerPath::kMySql);
  Check(warm.status(), "cached query");
  std::printf("=== Plan cache ===\n");
  std::printf("variant spelling hit=%s, optimize %.3f ms (saved %.3f ms)\n",
              warm->plan_cache_hit ? "yes" : "no", warm->optimize_ms,
              warm->optimize_saved_ms);
  const taurus::PlanCacheStats& stats = db.plan_cache().stats();
  std::printf("cache stats: %lld hits, %lld misses, %lld invalidations\n",
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.misses),
              static_cast<long long>(stats.invalidations));
  return 0;
}
