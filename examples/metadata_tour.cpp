// Metadata-provider tour: demonstrates the OID machinery of the paper's
// Section 5 — type categories, the expression cubes, commutator/inverse
// computation (the STR_EQ_STR walk-through of Section 5.7), the base +
// enumeration OID layout, and a real DXL round trip for a relation with
// an encoded string histogram.

#include <cstdio>

#include "mdp/provider.h"
#include "storage/storage.h"

using namespace taurus;  // NOLINT: example brevity

int main() {
  // A tiny catalog with statistics so the DXL document has histograms.
  Catalog catalog;
  auto table = catalog.CreateTable(
      "part", {{"p_partkey", TypeId::kLong, 0, false},
               {"p_brand", TypeId::kVarchar, 10, false},
               {"p_size", TypeId::kLong, 0, false}});
  if (!table.ok()) return 1;
  (void)catalog.AddIndex("part", {"part_pk", {0}, true, true});
  Storage storage;
  TableData* data = storage.CreateTable(*table);
  for (int i = 0; i < 1000; ++i) {
    data->Append({Value::Int(i),
                  Value::Str("Brand#" + std::to_string(1 + i % 5) +
                             std::to_string(1 + i % 5)),
                  Value::Int(1 + i % 50)});
  }
  data->BuildIndexes();
  catalog.SetStats((*table)->id, ComputeTableStats(*data));

  MetadataProvider mdp(catalog);

  std::printf("== Type categories (31 types -> 12 categories) ==\n");
  for (TypeId t : {TypeId::kTiny, TypeId::kLong, TypeId::kLongLong,
                   TypeId::kNewDecimal, TypeId::kVarchar, TypeId::kDate,
                   TypeId::kBlob}) {
    std::printf("  %-10s -> %s\n", TypeIdName(t),
                TypeCategoryName(CategoryOf(t)));
  }

  std::printf("\n== Expression cubes ==\n");
  std::printf("  arithmetic: 12 x 12 x 5 = %d points\n", kNumArithExprs);
  std::printf("  comparison: 12 x 12 x 6 = %d points\n", kNumCmpExprs);
  std::printf("  aggregate:  14 x 6     = %d points\n", kNumAggExprs);

  // The Section 5.7 walk-through: "p_brand = 'SM PKG'" maps to STR_EQ_STR;
  // its commutator and inverse OIDs exist.
  auto eq = mdp.ComparisonOid(BinaryOp::kEq, TypeId::kVarchar,
                              TypeId::kVarchar);
  std::printf("\n== STR_EQ_STR (Section 5.7) ==\n");
  std::printf("  oid        = %lld (%s)\n", static_cast<long long>(*eq),
              ExprOidName(*eq).c_str());
  std::printf("  commutator = %lld (%s)\n",
              static_cast<long long>(CommutatorOid(*eq)),
              ExprOidName(CommutatorOid(*eq)).c_str());
  std::printf("  inverse    = %lld (%s)\n",
              static_cast<long long>(InverseOid(*eq)),
              ExprOidName(InverseOid(*eq)).c_str());

  auto lt = mdp.ComparisonOid(BinaryOp::kLt, TypeId::kLong,
                              TypeId::kNewDecimal);
  std::printf("  INT4 < NUM : %s; commutator %s; inverse %s\n",
              ExprOidName(*lt).c_str(),
              ExprOidName(CommutatorOid(*lt)).c_str(),
              ExprOidName(InverseOid(*lt)).c_str());
  auto minus = mdp.ArithmeticOid(BinaryOp::kSub, TypeId::kLong,
                                 TypeId::kLong);
  std::printf("  INT4 - INT4: commutator oid = %lld (none: '-' does not "
              "commute)\n",
              static_cast<long long>(CommutatorOid(*minus)));

  std::printf("\n== Relation OID layout (base + enumeration) ==\n");
  auto rel = mdp.RelationOidByName("part");
  std::printf("  relation 'part' -> %lld (relation_base + id * stride)\n",
              static_cast<long long>(*rel));
  std::printf("  column 1        -> %lld\n",
              static_cast<long long>(ColumnOid(0, 1)));
  std::printf("  index 0         -> %lld\n",
              static_cast<long long>(IndexOid(0, 0)));

  std::printf("\n== DXL round trip ==\n");
  auto dxl = mdp.RelationToDxl(*rel);
  std::printf("%s\n", dxl->c_str());
  auto parsed = MetadataProvider::ParseRelationDxl(*dxl);
  std::printf("parsed back: %s, %lld rows, %zu columns, %zu indexes\n",
              parsed->name.c_str(), static_cast<long long>(parsed->rows),
              parsed->columns.size(), parsed->indexes.size());
  std::printf("p_brand histogram buckets: %zu (string boundaries encoded "
              "as order-preserving int64)\n",
              parsed->columns[1].stats.histogram.buckets().size());
  return 0;
}
