// Observability tour: runs one TPC-H query through the Orca detour with
// tracing on, then dumps the three observability surfaces this repo has
// (DESIGN.md section 10):
//   1. the per-query pipeline trace (span tree with timings + attributes)
//   2. EXPLAIN ANALYZE — estimates next to actual rows/loops/time + q-error
//   3. the metrics registry as JSON, and the same via SHOW STATUS
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/obs_dump
//       [--metrics-only|--explain-json|--digests-json|--recorder-json]
//
// --metrics-only prints only the MetricsJson() document, --explain-json
// only the ExplainAnalyzeJson document, --digests-json the DigestsJson()
// statement-digest table and --recorder-json the FlightRecorderJson()
// recent-query ring (all machine-readable; scripts/check.sh pipes each
// through scripts/validate_obs_json.py).

#include <cstdio>
#include <cstring>
#include <string>

#include "engine/database.h"
#include "workloads/tpch.h"

namespace {

void Fail(const taurus::Status& st, const char* what) {
  std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics_only = false;
  bool explain_json = false;
  bool digests_json = false;
  bool recorder_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-only") == 0) metrics_only = true;
    if (std::strcmp(argv[i], "--explain-json") == 0) explain_json = true;
    if (std::strcmp(argv[i], "--digests-json") == 0) digests_json = true;
    if (std::strcmp(argv[i], "--recorder-json") == 0) recorder_json = true;
  }

  taurus::Database db;
  auto st = taurus::SetupTpch(&db, 0.005);
  if (!st.ok()) Fail(st, "tpch setup");
  db.router_config().complex_query_threshold = 1;  // everything detours
  db.trace_config().enable = true;

  // TPC-H Q8 — two-level aggregation over a 7-way join; a good plan tree
  // for watching estimates drift from actuals.
  const std::string q8 = taurus::TpchQueries()[7];

  if (explain_json) {
    auto doc = db.ExplainAnalyzeJsonDump(q8, taurus::OptimizerPath::kOrca);
    if (!doc.ok()) Fail(doc.status(), "explain analyze json");
    std::printf("%s\n", doc->c_str());
    return 0;
  }

  if (digests_json || recorder_json) {
    // A small mixed sweep so both documents are non-trivial: repeated Q8
    // (digest aggregation + cache hits), a simple single-table query (the
    // MySQL path), and one statement that errors (unknown table).
    for (int i = 0; i < 3; ++i) {
      auto r = db.Query(q8, taurus::OptimizerPath::kOrca);
      if (!r.ok()) Fail(r.status(), "digest sweep");
    }
    auto simple = db.Query("select count(*) from region");
    if (!simple.ok()) Fail(simple.status(), "digest sweep simple");
    (void)db.Query("select * from no_such_table");  // recorded as error
    std::printf("%s\n", digests_json ? db.DigestsJson().c_str()
                                     : db.FlightRecorderJson().c_str());
    return 0;
  }

  auto analyze = db.ExplainAnalyze(q8, taurus::OptimizerPath::kOrca);
  if (!analyze.ok()) Fail(analyze.status(), "explain analyze");

  if (!metrics_only) {
    std::printf("=== pipeline trace (Q8, Orca route) ===\n%s\n",
                db.last_trace() != nullptr
                    ? db.last_trace()->Render().c_str()
                    : "(no trace)");
    std::printf("=== EXPLAIN ANALYZE (Q8, Orca route) ===\n%s\n",
                analyze->c_str());

    auto rows = db.Query("SHOW STATUS LIKE 'taurus.health.%'");
    if (!rows.ok()) Fail(rows.status(), "show status");
    std::printf("=== SHOW STATUS LIKE 'taurus.health.%%' ===\n");
    for (const auto& row : rows->rows) {
      std::printf("%-40s %s\n", row[0].AsString().c_str(),
                  row[1].AsString().c_str());
    }
    std::printf("\n=== MetricsJson() ===\n");
  }
  std::printf("%s\n", db.MetricsJson().c_str());
  return 0;
}
