// Reproduces Fig. 10 of "Integrating the Orca Optimizer into MySQL"
// (EDBT 2022): execution time for the 22 TPC-H queries with MySQL plans
// vs Orca plans. Setup per the paper's Section 6.1: complex-query
// threshold 3 (its default), Orca join search EXHAUSTIVE2.
//
// Expected shape (not absolute numbers — the substrate is an in-memory
// single-node engine, not the paper's Taurus cluster): a modest total
// improvement with large wins on a few queries (the paper: -16% total,
// Q21 2.6X, Q13 2X) and at least one regression (Q16, where MySQL's
// riskier strategy pays off).
//
// Usage: fig10_tpch [--sf=0.002]

#include "bench_util.h"
#include "workloads/tpch.h"

using namespace taurus_bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ArgScale(argc, argv, 0.002);
  taurus::Database db;
  auto st = taurus::SetupTpch(&db, sf);
  if (!st.ok()) {
    std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }
  db.router_config().complex_query_threshold = 3;
  db.orca_config().strategy = taurus::JoinSearchStrategy::kExhaustive2;

  PrintHeader("Fig. 10 — TPC-H execution time, MySQL plans vs Orca plans");
  std::printf("scale factor %g (paper: SF 20 on a Taurus cluster)\n\n", sf);
  std::printf("%-6s %12s %12s %9s %8s\n", "query", "mysql_ms", "orca_ms",
              "speedup", "rows");

  double total_mysql = 0;
  double total_orca = 0;
  const auto& queries = taurus::TpchQueries();
  std::vector<QueryTiming> timings;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryTiming t = TimeBothPaths(&db, static_cast<int>(i) + 1, queries[i]);
    timings.push_back(t);
    if (!t.mysql_ok || !t.orca_ok) {
      std::printf("Q%-5d FAILED\n", t.query_number);
      continue;
    }
    total_mysql += t.mysql_ms;
    total_orca += t.orca_ms;
    std::printf("Q%-5d %12.2f %12.2f %8.2fx %8zu%s\n", t.query_number,
                t.mysql_ms, t.orca_ms,
                t.orca_ms > 0 ? t.mysql_ms / t.orca_ms : 0.0, t.rows,
                t.detoured ? "" : "   (below threshold: mysql plan)");
  }
  std::printf("\n%-6s %12.2f %12.2f\n", "total", total_mysql, total_orca);
  if (total_mysql > 0) {
    std::printf("total run time reduction with Orca plans: %.1f%%  "
                "(paper: 16%%)\n",
                100.0 * (1.0 - total_orca / total_mysql));
  }
  std::printf("\npaper's callouts: Q21 2.6X, Q13 2X faster with Orca; "
              "Q16 ~2X slower.\nmeasured:");
  for (int q : {21, 13, 16}) {
    const QueryTiming& t = timings[static_cast<size_t>(q - 1)];
    if (t.mysql_ok && t.orca_ok && t.orca_ms > 0) {
      std::printf(" Q%d %.2fx", q, t.mysql_ms / t.orca_ms);
    }
  }
  std::printf("\n");
  return 0;
}
