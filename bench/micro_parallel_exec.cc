// Morsel-driven parallel executor scaling: a 1M-row scan-aggregate and a
// TPC-H Q3-shaped join+aggregate, each run at 1/2/4/8 workers. Workers=1
// is exactly the serial executor (no pool is armed), so the first column
// doubles as the regression baseline for the parallel refactor.
//
// Expect near-linear scan-aggregate scaling up to the physical core count
// and somewhat flatter join scaling (the build side is constructed once,
// serially, and only the probe pipeline goes wide). On a single-core host
// all columns converge — the interesting number is then workers=1 vs the
// pre-refactor serial executor, which must be within noise.
//
// Usage: micro_parallel_exec [--rows=1000000] [--repeat=5] [--json]
//   --json writes BENCH_parallel_exec.json for CI trending.

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"

using namespace taurus_bench;  // NOLINT
using taurus::Row;
using taurus::Value;

namespace {

/// Lineitem-shaped fact table plus the two dimension tables a Q3-shaped
/// join needs, at 1 : 1/4 : 1/40 row ratios (li : ord : cust).
taurus::Status Setup(taurus::Database* db, long long rows) {
  auto st = db->ExecuteSql(
      "CREATE TABLE cust (id INT NOT NULL PRIMARY KEY, "
      "mktsegment VARCHAR(10) NOT NULL)");
  if (!st.ok()) return st;
  st = db->ExecuteSql(
      "CREATE TABLE ord (id INT NOT NULL PRIMARY KEY, "
      "custkey INT NOT NULL, orderdate INT NOT NULL)");
  if (!st.ok()) return st;
  st = db->ExecuteSql(
      "CREATE TABLE li (id INT NOT NULL PRIMARY KEY, "
      "orderkey INT NOT NULL, qty DOUBLE NOT NULL, "
      "price DOUBLE NOT NULL, disc DOUBLE NOT NULL, "
      "shipdate INT NOT NULL)");
  if (!st.ok()) return st;

  const char* segments[] = {"BUILDING", "MACHINERY", "AUTO", "HOUSE",
                            "FURN"};
  taurus::Rng rng(7);
  const long long num_cust = std::max(1LL, rows / 40);
  const long long num_ord = std::max(1LL, rows / 4);
  std::vector<Row> cust;
  for (long long i = 0; i < num_cust; ++i) {
    cust.push_back({Value::Int(i), Value::Str(segments[i % 5])});
  }
  st = db->BulkLoad("cust", std::move(cust));
  if (!st.ok()) return st;
  std::vector<Row> ord;
  for (long long i = 0; i < num_ord; ++i) {
    ord.push_back({Value::Int(i), Value::Int(rng.Uniform(0, num_cust - 1)),
                   Value::Int(9000 + rng.Uniform(0, 399))});
  }
  st = db->BulkLoad("ord", std::move(ord));
  if (!st.ok()) return st;
  std::vector<Row> li;
  for (long long i = 0; i < rows; ++i) {
    li.push_back({Value::Int(i), Value::Int(rng.Uniform(0, num_ord - 1)),
                  Value::Double(1 + rng.Uniform(0, 49)),
                  Value::Double(900 + rng.NextDouble() * 100000),
                  Value::Double(rng.Uniform(0, 9) * 0.01),
                  Value::Int(9000 + rng.Uniform(0, 399))});
  }
  st = db->BulkLoad("li", std::move(li));
  if (!st.ok()) return st;
  return db->AnalyzeAll();
}

/// Best-of-`repeat` execution time; aborts the bench on query failure.
double BestMs(taurus::Database* db, const std::string& sql, int repeat,
              int* pipelines) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    auto res = db->Query(sql, taurus::OptimizerPath::kMySql);
    if (!res.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   res.status().ToString().c_str());
      std::exit(1);
    }
    if (r == 0 || res->execute_ms < best) best = res->execute_ms;
    *pipelines = res->parallel_pipelines;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const long long rows = ArgInt(argc, argv, "--rows=", 1000000);
  const int repeat = static_cast<int>(ArgInt(argc, argv, "--repeat=", 5));

  taurus::Database db;
  auto st = Setup(&db, rows);
  if (!st.ok()) {
    std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }

  const std::string scan_agg =
      "SELECT COUNT(*), SUM(qty), SUM(price * (1.0 - disc)), MIN(shipdate), "
      "MAX(shipdate) FROM li WHERE shipdate > 9050";
  // Q3 shape: selective dimension filters, two hash joins into the fact
  // scan, grouped revenue aggregate with a top-N sort.
  const std::string q3 =
      "SELECT o.id, SUM(l.price * (1.0 - l.disc)) AS revenue "
      "FROM cust c, ord o, li l "
      "WHERE c.mktsegment = 'BUILDING' AND c.id = o.custkey "
      "AND l.orderkey = o.id AND o.orderdate < 9200 AND l.shipdate > 9100 "
      "GROUP BY o.id ORDER BY revenue DESC LIMIT 10";

  PrintHeader("Morsel-driven parallel executor scaling");
  std::printf("li rows %lld, best of %d runs, hardware workers %d\n\n", rows,
              repeat, taurus::ThreadPool::HardwareWorkers());
  std::printf("%-10s %14s %14s %10s %10s\n", "workers", "scan_agg_ms",
              "q3_join_ms", "scan_x", "join_x");

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("rows", static_cast<double>(rows));
  double scan_serial = 0.0;
  double join_serial = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    db.exec_config().parallel_workers = workers;
    db.exec_config().parallel_min_driver_rows = 0;
    int scan_pipes = 0;
    int join_pipes = 0;
    double scan_ms = BestMs(&db, scan_agg, repeat, &scan_pipes);
    double join_ms = BestMs(&db, q3, repeat, &join_pipes);
    if (workers == 1) {
      scan_serial = scan_ms;
      join_serial = join_ms;
    }
    std::printf("%-10d %14.2f %14.2f %9.2fx %9.2fx%s\n", workers, scan_ms,
                join_ms, scan_ms > 0 ? scan_serial / scan_ms : 0.0,
                join_ms > 0 ? join_serial / join_ms : 0.0,
                workers > 1 && scan_pipes == 0 ? "   (stayed serial)" : "");
    const std::string w = std::to_string(workers);
    metrics.emplace_back("scan_agg_ms_w" + w, scan_ms);
    metrics.emplace_back("q3_join_ms_w" + w, join_ms);
    if (workers == 4) {
      metrics.emplace_back("scan_speedup_w4",
                           scan_ms > 0 ? scan_serial / scan_ms : 0.0);
      metrics.emplace_back("join_speedup_w4",
                           join_ms > 0 ? join_serial / join_ms : 0.0);
    }
  }

  if (ArgFlag(argc, argv, "--json")) {
    WriteBenchJson("parallel_exec", metrics);
  }
  return 0;
}
