// Reproduces the paper's Section 4.2 walk-through on TPC-H Q17:
//   Fig. 6    — Orca's physical plan with memo group ids;
//   Fig. 7    — the MySQL best-position arrays per query block after the
//               two-pass plan conversion;
//   Listing 4 — the Orca logical tree after predicate segregation;
//   Listing 7 — the final Orca-assisted EXPLAIN, including the correlated
//               "Materialize (invalidate on row from part)" annotation.
//
// Usage: fig06_07_q17_conversion [--sf=0.002]

#include "bench_util.h"
#include "bridge/orca_path.h"
#include "bridge/parse_tree_converter.h"
#include "frontend/prepare.h"
#include "orca/optimizer.h"
#include "parser/parser.h"
#include "workloads/tpch.h"

using namespace taurus;        // NOLINT
using namespace taurus_bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ArgScale(argc, argv, 0.002);
  Database db;
  if (!SetupTpch(&db, sf).ok()) return 1;

  const std::string& q17 = TpchQueries()[16];

  // Manually drive the pipeline so the intermediate artifacts can be shown.
  auto parsed = ParseSelect(q17);
  if (!parsed.ok()) return 1;
  auto bound = BindStatement(db.catalog(), std::move(*parsed));
  if (!bound.ok()) return 1;
  BoundStatement stmt = std::move(*bound);
  if (!PrepareStatement(&stmt).ok()) return 1;

  PrintHeader("Listing 4 — Orca logical tree for Q17's outer block "
              "(after predicate segregation)");
  OrcaConfig config;
  auto logical = ConvertBlockToOrcaLogical(stmt.block.get(), stmt.num_refs,
                                           &db.mdp(), config);
  if (!logical.ok()) {
    std::fprintf(stderr, "%s\n", logical.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", (*logical)->ToString().c_str());

  PrintHeader("Fig. 6 — Orca physical plan (numbers are memo group ids)");
  MdpStatsProvider stats(db.catalog(), stmt.leaves, &db.mdp());
  OrcaOptimizer optimizer(config, &stats, stmt.num_refs);
  auto physical = optimizer.Optimize(logical->get());
  if (!physical.ok()) {
    std::fprintf(stderr, "%s\n", physical.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", (*physical)->ToString().c_str());
  std::printf("(%d memo groups, %lld partitions costed)\n",
              optimizer.num_groups(),
              static_cast<long long>(optimizer.partitions_evaluated()));

  PrintHeader("Fig. 7 — best-position arrays after the two-pass plan "
              "conversion");
  OrcaPathOptimizer orca_path(db.catalog(), &stmt, &db.mdp(), config);
  auto skeleton = orca_path.Optimize();
  if (!skeleton.ok()) {
    std::fprintf(stderr, "%s\n", skeleton.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", RenderBestPositionArrays(**skeleton).c_str());
  std::printf("(the Orca detour converted the correlated AVG subquery to a "
              "grouped derived\n table — the paper's derived_1_2 of Fig. 7; "
              "%d subqueries decorrelated)\n",
              orca_path.metrics().subqueries_decorrelated);

  PrintHeader("Listing 7 — Orca-assisted EXPLAIN");
  auto explain = db.Explain(q17, OptimizerPath::kOrca);
  if (explain.ok()) std::printf("%s", explain->c_str());

  QueryTiming t = TimeBothPaths(&db, 17, q17);
  if (t.mysql_ok && t.orca_ok) {
    std::printf("\nexecution: mysql %.2f ms, orca %.2f ms\n", t.mysql_ms,
                t.orca_ms);
  }
  return 0;
}
