// Ablation bench for the design choices the paper's Section 7 ("Lessons
// Learned") calls out:
//
//   1. OR-refactoring on/off           — TPC-DS Q41 and TPC-H Q19, the
//                                        paper's factorization showcase;
//   2. inner-hash-join build flip       — Section 7 item 2: without the
//      on/off                            converter's child swap, Orca's
//                                        intended build side lands on the
//                                        probe input;
//   3. index-NLJ on/off                 — Orca's index-lookup inner sides;
//   4. bushy joins on/off               — Section 8 cites Leis et al. on
//                                        join order vs bushy importance;
//   5. join-enumeration strategy        — GREEDY / EXHAUSTIVE /
//                                        EXHAUSTIVE2 execution quality;
//   6. string-histogram encoding        — selectivity estimates with the
//                                        order-preserving 64-bit encoding
//                                        vs no string statistics at all.
//
// Usage: ablation_lessons [--sf=0.002]

#include "bench_util.h"
#include "frontend/binder.h"
#include "mdp/stats_adapter.h"
#include "parser/parser.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

using namespace taurus;        // NOLINT
using namespace taurus_bench;  // NOLINT

namespace {

double OrcaTime(Database* db, const std::string& sql) {
  auto r = db->Query(sql, OptimizerPath::kOrca);
  return r.ok() ? r->execute_ms : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = ArgScale(argc, argv, 0.002);
  Database tpch;
  if (!SetupTpch(&tpch, sf).ok()) return 1;
  Database tpcds;
  if (!SetupTpcds(&tpcds, sf / 2).ok()) return 1;
  tpcds.router_config().complex_query_threshold = 2;

  const std::string& h_q19 = TpchQueries()[18];
  const std::string& ds_q41 = TpcdsQueries()[40];
  const std::string& ds_q72 = TpcdsQueries()[71];
  const std::string& h_q5 = TpchQueries()[4];

  PrintHeader("Ablation 1 — OR-refactoring (Section 7 item 4; TPC-DS Q41 / "
              "TPC-H Q19)");
  tpcds.orca_config().enable_or_factoring = true;
  double q41_on = OrcaTime(&tpcds, ds_q41);
  tpcds.orca_config().enable_or_factoring = false;
  double q41_off = OrcaTime(&tpcds, ds_q41);
  tpcds.orca_config().enable_or_factoring = true;
  tpch.orca_config().enable_or_factoring = true;
  double q19_on = OrcaTime(&tpch, h_q19);
  tpch.orca_config().enable_or_factoring = false;
  double q19_off = OrcaTime(&tpch, h_q19);
  tpch.orca_config().enable_or_factoring = true;
  std::printf("  DS Q41: factored %.2f ms, unfactored %.2f ms  (%.2fx)\n",
              q41_on, q41_off, q41_on > 0 ? q41_off / q41_on : 0);
  std::printf("  H  Q19: factored %.2f ms, unfactored %.2f ms  (%.2fx)\n",
              q19_on, q19_off, q19_on > 0 ? q19_off / q19_on : 0);

  PrintHeader("Ablation 2 — inner hash join build/probe flip "
              "(Section 7 item 2)");
  tpcds.orca_config().flip_inner_hash_build = true;
  double flip_on = OrcaTime(&tpcds, ds_q72);
  tpcds.orca_config().flip_inner_hash_build = false;
  double flip_off = OrcaTime(&tpcds, ds_q72);
  tpcds.orca_config().flip_inner_hash_build = true;
  std::printf("  DS Q72: with flip %.2f ms, without %.2f ms  (%.2fx "
              "slowdown without)\n",
              flip_on, flip_off, flip_on > 0 ? flip_off / flip_on : 0);

  PrintHeader("Ablation 3 — index nested-loop joins");
  tpch.orca_config().enable_index_nlj = true;
  double inlj_on = OrcaTime(&tpch, h_q5);
  tpch.orca_config().enable_index_nlj = false;
  double inlj_off = OrcaTime(&tpch, h_q5);
  tpch.orca_config().enable_index_nlj = true;
  std::printf("  H Q5: with index-NLJ %.2f ms, without %.2f ms\n", inlj_on,
              inlj_off);

  PrintHeader("Ablation 4 — bushy join trees (EXHAUSTIVE2)");
  tpcds.orca_config().enable_bushy = true;
  double bushy_on = OrcaTime(&tpcds, ds_q72);
  tpcds.orca_config().enable_bushy = false;
  double bushy_off = OrcaTime(&tpcds, ds_q72);
  tpcds.orca_config().enable_bushy = true;
  std::printf("  DS Q72: bushy %.2f ms, linear-only %.2f ms\n", bushy_on,
              bushy_off);

  PrintHeader("Ablation 5 — join enumeration strategy (execution quality)");
  for (JoinSearchStrategy s :
       {JoinSearchStrategy::kGreedy, JoinSearchStrategy::kExhaustive,
        JoinSearchStrategy::kExhaustive2}) {
    tpcds.orca_config().strategy = s;
    double t = OrcaTime(&tpcds, ds_q72);
    std::printf("  DS Q72 under %-12s: %.2f ms\n", JoinSearchStrategyName(s),
                t);
  }
  tpcds.orca_config().strategy = JoinSearchStrategy::kExhaustive2;

  PrintHeader("Ablation 6 — string histogram encoding (Sections 5.5 / 7)");
  {
    // Compare selectivity estimates for a string equality and range with
    // the DXL-encoded histograms vs the no-statistics default guesses.
    auto parsed = ParseSelect(
        "SELECT COUNT(*) FROM part WHERE p_container = 'SM PKG' AND "
        "p_brand < 'Brand#30'");
    auto bound = BindStatement(tpch.catalog(), std::move(*parsed));
    BoundStatement stmt = std::move(*bound);
    MdpStatsProvider with(tpch.catalog(), stmt.leaves, &tpch.mdp());
    Catalog empty_catalog;  // no stats at all
    (void)empty_catalog.CreateTable(
        "part", {{"p_container", TypeId::kVarchar, 10, false}});
    const Expr& conj1 = *stmt.block->where->children[0];
    const Expr& conj2 = *stmt.block->where->children[1];
    std::printf("  p_container = 'SM PKG'   : encoded-histogram sel "
                "%.5f (true ~ 1/40)\n",
                with.ConjunctSelectivity(conj1));
    std::printf("  p_brand < 'Brand#30'     : encoded-histogram sel "
                "%.5f\n",
                with.ConjunctSelectivity(conj2));
    std::printf("  the >=8-byte-common-prefix limitation: 'Brand#xy' "
                "values share 6 chars,\n  so ranges still resolve; with "
                "longer shared prefixes buckets collapse (see\n  "
                "histogram_test.LongCommonPrefixCollides).\n");
  }

  // Verify correctness was unaffected by any toggle (paths agree).
  PrintHeader("Sanity — toggles preserve results");
  auto a = tpcds.Query(ds_q41, OptimizerPath::kMySql);
  auto b = tpcds.Query(ds_q41, OptimizerPath::kOrca);
  std::printf("  DS Q41 rows: mysql %zu, orca %zu\n",
              a.ok() ? a->rows.size() : 0, b.ok() ? b->rows.size() : 0);
  return 0;
}
