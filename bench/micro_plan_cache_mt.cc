// Multi-threaded plan-cache scaling: the lock-striping payoff measured two
// ways, each at 1/4/16 threads.
//
//   hit_qps_t<N>    — end-to-end hit-path compiles (parse -> fingerprint ->
//                     striped lookup -> rewrite replay -> thaw -> refine)
//                     against one shared engine, every compile a cache hit.
//   lookup_qps_t<N> — raw PlanCache::Lookup on a warm cache, isolating the
//                     per-shard shared-lock hit path from the compile work
//                     around it.
//
// Throughput is aggregate completed operations / wall time. On a multicore
// host the shared-lock striped hit path scales near-linearly to the core
// count (the 1->4 scaling factor is the headline number); on a single-core
// host all columns converge toward 1x — `hardware_workers` is recorded in
// the JSON so trend consumers can tell the two apart.
//
// Usage: micro_plan_cache_mt [--ms=300] [--json]
//   --json writes BENCH_plan_cache_mt.json for CI trending.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/plan_cache.h"
#include "workloads/tpch.h"

using namespace taurus_bench;  // NOLINT

namespace {

// Representative TPC-H shapes spanning scan+agg through multi-way joins,
// enough keys to spread across every shard of a striped cache.
const int kShapes[] = {1, 3, 5, 6, 9, 10, 12, 14};
constexpr int kNumShapes = 8;

const std::string& TpchQ(int q) {
  return taurus::TpchQueries()[static_cast<size_t>(q - 1)];
}

/// Aggregate ops/sec of `threads` workers hammering `work` (which returns
/// ops completed per call) for ~`duration_ms` of wall time.
template <typename Fn>
double MeasureQps(int threads, int duration_ms, const Fn& work) {
  std::atomic<bool> stop{false};
  std::atomic<long long> total_ops{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      long long ops = 0;
      while (!stop.load(std::memory_order_relaxed)) ops += work(t, ops);
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : pool) th.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return static_cast<double>(total_ops.load()) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const int duration_ms = static_cast<int>(ArgInt(argc, argv, "--ms=", 300));
  const bool json = ArgFlag(argc, argv, "--json");

  taurus::Database db;
  {
    auto st = taurus::SetupTpch(&db, 0.001);
    if (!st.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  db.router_config().complex_query_threshold = 1;  // every shape detours
  db.plan_cache_config().capacity = 256;           // fully striped

  // Warm every shape on the auto route, then verify hits.
  for (int q : kShapes) {
    auto c = db.Compile(TpchQ(q), taurus::OptimizerPath::kAuto);
    if (!c.ok()) {
      std::fprintf(stderr, "warmup compile failed: %s\n",
                   c.status().ToString().c_str());
      return 1;
    }
  }
  {
    auto c = db.Compile(TpchQ(kShapes[0]), taurus::OptimizerPath::kAuto);
    if (!c.ok() || !(*c)->plan_cache_hit) {
      std::fprintf(stderr, "warm cache did not produce a hit\n");
      return 1;
    }
  }

  PrintHeader("plan-cache hit-path scaling (striped shared-lock lookups)");
  std::printf("shards=%zu capacity=%zu hardware_workers=%d\n",
              db.plan_cache().shard_count(), db.plan_cache().capacity(),
              taurus::ThreadPool::HardwareWorkers());

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("hardware_workers",
                       taurus::ThreadPool::HardwareWorkers());
  metrics.emplace_back("shards",
                       static_cast<double>(db.plan_cache().shard_count()));

  // Leg 1: end-to-end hit-path compiles.
  std::printf("\n%-28s %14s\n", "hit-path compile", "qps");
  double hit_t1 = 0.0, hit_t4 = 0.0;
  for (int threads : {1, 4, 16}) {
    double qps = MeasureQps(threads, duration_ms, [&](int t, long long i) {
      const int q = kShapes[(t + i) % kNumShapes];
      auto c = db.Compile(TpchQ(q), taurus::OptimizerPath::kAuto);
      if (!c.ok() || !(*c)->plan_cache_hit) std::abort();
      return 1;
    });
    if (threads == 1) hit_t1 = qps;
    if (threads == 4) hit_t4 = qps;
    std::printf("  threads=%-2d %25.0f\n", threads, qps);
    metrics.emplace_back("hit_qps_t" + std::to_string(threads), qps);
  }

  // Leg 2: raw striped Lookup on a standalone cache — 64 warm keys.
  taurus::PlanCache cache(256);
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("bench-key-" + std::to_string(i));
    taurus::PlanCacheEntry entry;
    entry.fingerprint = static_cast<uint64_t>(i);
    entry.schema_version = 1;
    entry.stats_version = 1;
    cache.Insert(keys.back(), std::move(entry));
  }
  std::printf("\n%-28s %14s\n", "raw Lookup", "qps");
  double lookup_t1 = 0.0, lookup_t4 = 0.0;
  for (int threads : {1, 4, 16}) {
    double qps = MeasureQps(threads, duration_ms, [&](int t, long long i) {
      const std::string& key =
          keys[static_cast<size_t>(t * 7 + i) % keys.size()];
      auto e = cache.Lookup(key, 1, 1);
      if (e == nullptr) std::abort();
      return 1;
    });
    if (threads == 1) lookup_t1 = qps;
    if (threads == 4) lookup_t4 = qps;
    std::printf("  threads=%-2d %25.0f\n", threads, qps);
    metrics.emplace_back("lookup_qps_t" + std::to_string(threads), qps);
  }

  const double hit_scaling = hit_t1 > 0 ? hit_t4 / hit_t1 : 0.0;
  const double lookup_scaling = lookup_t1 > 0 ? lookup_t4 / lookup_t1 : 0.0;
  std::printf("\nscaling 1->4 threads: hit-path %.2fx, raw lookup %.2fx\n",
              hit_scaling, lookup_scaling);
  metrics.emplace_back("scaling_1_to_4", hit_scaling);
  metrics.emplace_back("lookup_scaling_1_to_4", lookup_scaling);

  if (json) WriteBenchJson("plan_cache_mt", metrics);
  return 0;
}
