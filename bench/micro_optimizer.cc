// Micro-benchmarks (google-benchmark) for the compilation pipeline
// stages: parsing, binding+prepare, MySQL greedy optimization, the Orca
// detour (per join-search strategy), the metadata provider's DXL round
// trip, and the expression-OID algebra. These are the per-component
// numbers behind the Table 1 totals.
//
// --json writes BENCH_optimizer.json (flat name -> ms/iter map) for CI
// trending; other flags pass through to google-benchmark.

#include <benchmark/benchmark.h>

#include "bench_json_reporter.h"

#include "bridge/orca_path.h"
#include "frontend/prepare.h"
#include "mdp/provider.h"
#include "myopt/mysql_optimizer.h"
#include "parser/parser.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    auto st = SetupTpch(d, 0.001);
    if (!st.ok()) std::abort();
    return d;
  }();
  return db;
}

const std::string& Q5() { return TpchQueries()[4]; }

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto q = ParseSelect(Q5());
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_Parse);

void BM_BindPrepare(benchmark::State& state) {
  Database* db = SharedDb();
  for (auto _ : state) {
    auto q = ParseSelect(Q5());
    auto bound = BindStatement(db->catalog(), std::move(*q));
    BoundStatement stmt = std::move(*bound);
    auto st = PrepareStatement(&stmt);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_BindPrepare);

void BM_MySqlOptimize(benchmark::State& state) {
  Database* db = SharedDb();
  for (auto _ : state) {
    auto q = ParseSelect(Q5());
    auto bound = BindStatement(db->catalog(), std::move(*q));
    BoundStatement stmt = std::move(*bound);
    (void)PrepareStatement(&stmt);
    auto skel = MySqlOptimize(db->catalog(), &stmt);
    benchmark::DoNotOptimize(skel);
  }
}
BENCHMARK(BM_MySqlOptimize);

void BM_OrcaOptimize(benchmark::State& state) {
  Database* db = SharedDb();
  OrcaConfig config;
  config.strategy = static_cast<JoinSearchStrategy>(state.range(0));
  for (auto _ : state) {
    auto q = ParseSelect(Q5());
    auto bound = BindStatement(db->catalog(), std::move(*q));
    BoundStatement stmt = std::move(*bound);
    (void)PrepareStatement(&stmt);
    OrcaPathOptimizer orca(db->catalog(), &stmt, &db->mdp(), config);
    auto skel = orca.Optimize();
    benchmark::DoNotOptimize(skel);
  }
}
BENCHMARK(BM_OrcaOptimize)
    ->Arg(static_cast<int>(JoinSearchStrategy::kGreedy))
    ->Arg(static_cast<int>(JoinSearchStrategy::kExhaustive))
    ->Arg(static_cast<int>(JoinSearchStrategy::kExhaustive2));

void BM_FullCompileOrca(benchmark::State& state) {
  Database* db = SharedDb();
  db->router_config().complex_query_threshold = 1;
  for (auto _ : state) {
    auto c = db->Compile(Q5(), OptimizerPath::kOrca);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_FullCompileOrca);

void BM_MdpDxlRoundTrip(benchmark::State& state) {
  Database* db = SharedDb();
  MetadataProvider mdp(db->catalog());  // fresh: no cache
  auto oid = mdp.RelationOidByName("lineitem");
  for (auto _ : state) {
    auto dxl = mdp.RelationToDxl(*oid);
    auto parsed = MetadataProvider::ParseRelationDxl(*dxl);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_MdpDxlRoundTrip);

void BM_MdpCachedLookup(benchmark::State& state) {
  Database* db = SharedDb();
  auto oid = db->mdp().RelationOidByName("lineitem");
  (void)db->mdp().GetRelation(*oid);  // warm
  for (auto _ : state) {
    auto rel = db->mdp().GetRelation(*oid);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_MdpCachedLookup);

void BM_ExprOidAlgebra(benchmark::State& state) {
  for (auto _ : state) {
    for (int64_t oid = kCmpBase; oid < kCmpBase + kNumCmpExprs; ++oid) {
      benchmark::DoNotOptimize(CommutatorOid(oid));
      benchmark::DoNotOptimize(InverseOid(oid));
    }
  }
}
BENCHMARK(BM_ExprOidAlgebra);

}  // namespace
}  // namespace taurus

int main(int argc, char** argv) {
  return taurus_bench::GBenchJsonMain(argc, argv, "optimizer");
}
