#ifndef TAURUS_BENCH_BENCH_JSON_REPORTER_H_
#define TAURUS_BENCH_BENCH_JSON_REPORTER_H_

#include <benchmark/benchmark.h>

#include <cctype>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"

namespace taurus_bench {

/// ConsoleReporter that also collects one (name, ms-per-iteration) metric
/// per run, so google-benchmark benches emit the same flat
/// BENCH_<name>.json schema the hand-rolled benches write through
/// WriteBenchJson (micro_parallel_exec, table1_compile_overhead).
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      // real_accumulated_time is seconds over all iterations.
      double ms = run.real_accumulated_time * 1e3;
      if (run.iterations > 0) ms /= static_cast<double>(run.iterations);
      metrics_.emplace_back(MetricKey(run.benchmark_name()), ms);
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }

 private:
  /// "BM_HashJoin/4096" -> "hash_join_4096_ms": a flat JSON key that stays
  /// stable across benchmark-library versions.
  static std::string MetricKey(const std::string& name) {
    std::string n = name;
    if (n.rfind("BM_", 0) == 0) n = n.substr(3);
    std::string key;
    for (size_t i = 0; i < n.size(); ++i) {
      unsigned char c = static_cast<unsigned char>(n[i]);
      if (std::isalnum(c)) {
        if (std::isupper(c) && !key.empty() && key.back() != '_' &&
            !std::isupper(static_cast<unsigned char>(n[i - 1]))) {
          key.push_back('_');
        }
        key.push_back(static_cast<char>(std::tolower(c)));
      } else if (!key.empty() && key.back() != '_') {
        key.push_back('_');
      }
    }
    while (!key.empty() && key.back() == '_') key.pop_back();
    return key + "_ms";
  }

  std::vector<std::pair<std::string, double>> metrics_;
};

/// Drop-in BENCHMARK_MAIN() replacement that adds the repo-wide --json
/// flag: the flag is stripped before benchmark::Initialize (which rejects
/// flags it does not know) and BENCH_<name>.json is written after the run.
inline int GBenchJsonMain(int argc, char** argv, const char* name) {
  bool want_json = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      want_json = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  char arg0_default[] = "benchmark";
  if (args.empty()) args.push_back(arg0_default);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (want_json) WriteBenchJson(name, reporter.metrics());
  return 0;
}

}  // namespace taurus_bench

#endif  // TAURUS_BENCH_BENCH_JSON_REPORTER_H_
