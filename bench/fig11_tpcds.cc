// Reproduces Fig. 11: execution time for the 99 TPC-DS queries with MySQL
// plans vs Orca plans, plus the Section 6.2 summary statistics — the
// fraction of queries where Orca wins, the total run-time reduction
// (paper: 62%), and the >=10X set (paper: {1, 6, 17, 24, 31, 32, 41, 58,
// 81, 92}, with {1, 6, 41} >= 100X).
//
// Setup per the paper: complex-query threshold 2, EXHAUSTIVE2.
//
// Usage: fig11_tpcds [--sf=0.001]

#include <algorithm>

#include "bench_util.h"
#include "workloads/tpcds.h"

using namespace taurus_bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ArgScale(argc, argv, 0.001);
  taurus::Database db;
  auto st = taurus::SetupTpcds(&db, sf);
  if (!st.ok()) {
    std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }
  db.router_config().complex_query_threshold = 2;  // paper, Section 6.2
  db.orca_config().strategy = taurus::JoinSearchStrategy::kExhaustive2;

  PrintHeader("Fig. 11 — TPC-DS execution time, MySQL plans vs Orca plans");
  std::printf("scale %g, threshold 2, EXHAUSTIVE2 "
              "(paper: SF 100 on a Taurus cluster)\n\n", sf);
  std::printf("%-6s %12s %12s %9s\n", "query", "mysql_ms", "orca_ms",
              "speedup");

  const auto& queries = taurus::TpcdsQueries();
  double total_mysql = 0;
  double total_orca = 0;
  int orca_wins = 0;
  int measured = 0;
  std::vector<QueryTiming> timings;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryTiming t = TimeBothPaths(&db, static_cast<int>(i) + 1, queries[i]);
    timings.push_back(t);
    if (!t.mysql_ok || !t.orca_ok) {
      std::printf("Q%-5d FAILED\n", t.query_number);
      continue;
    }
    ++measured;
    total_mysql += t.mysql_ms;
    total_orca += t.orca_ms;
    if (t.orca_ms < t.mysql_ms) ++orca_wins;
    std::printf("Q%-5d %12.2f %12.2f %8.2fx\n", t.query_number, t.mysql_ms,
                t.orca_ms, t.orca_ms > 0 ? t.mysql_ms / t.orca_ms : 0.0);
  }

  std::printf("\n%-6s %12.2f %12.2f\n", "total", total_mysql, total_orca);
  if (total_mysql > 0) {
    std::printf("total reduction: %.1f%%   (paper: 62%%)\n",
                100.0 * (1.0 - total_orca / total_mysql));
  }
  std::printf("Orca wins on %d of %d queries (paper: two-thirds of 99)\n",
              orca_wins, measured);

  std::printf("\nqueries with >=10X Orca speedup (paper: "
              "{1, 6, 17, 24, 31, 32, 41, 58, 81, 92}):\n  ");
  for (const QueryTiming& t : timings) {
    if (t.mysql_ok && t.orca_ok && t.orca_ms > 0 &&
        t.mysql_ms / t.orca_ms >= 10.0) {
      std::printf("Q%d(%.0fx) ", t.query_number, t.mysql_ms / t.orca_ms);
    }
  }
  std::printf("\nqueries with >=100X (paper: {1: 198X, 6: 123X, 41: "
              "222X}):\n  ");
  for (const QueryTiming& t : timings) {
    if (t.mysql_ok && t.orca_ok && t.orca_ms > 0 &&
        t.mysql_ms / t.orca_ms >= 100.0) {
      std::printf("Q%d(%.0fx) ", t.query_number, t.mysql_ms / t.orca_ms);
    }
  }
  std::printf("\n");
  return 0;
}
