#ifndef TAURUS_BENCH_BENCH_UTIL_H_
#define TAURUS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/database.h"

namespace taurus_bench {

/// One query's measurement across the two optimizer paths.
struct QueryTiming {
  int query_number = 0;
  bool mysql_ok = false;
  bool orca_ok = false;
  double mysql_ms = 0.0;       ///< execution time, MySQL plan
  double orca_ms = 0.0;        ///< execution time, Orca plan
  double mysql_opt_ms = 0.0;   ///< compile time, MySQL optimizer
  double orca_opt_ms = 0.0;    ///< compile time incl. the Orca detour
  bool detoured = false;       ///< the "Orca" run actually took the detour
  size_t rows = 0;
};

/// Runs `sql` with the MySQL optimizer forced, then with the integration's
/// automatic routing (threshold + fallback) — matching the paper's setup,
/// where sub-threshold queries execute with MySQL plans in both runs.
inline QueryTiming TimeBothPaths(taurus::Database* db, int number,
                                 const std::string& sql) {
  QueryTiming t;
  t.query_number = number;
  auto mysql = db->Query(sql, taurus::OptimizerPath::kMySql);
  if (mysql.ok()) {
    t.mysql_ok = true;
    t.mysql_ms = mysql->execute_ms;
    t.mysql_opt_ms = mysql->optimize_ms;
    t.rows = mysql->rows.size();
  }
  auto orca = db->Query(sql, taurus::OptimizerPath::kAuto);
  if (orca.ok()) {
    t.orca_ok = true;
    t.orca_ms = orca->execute_ms;
    t.orca_opt_ms = orca->optimize_ms;
    t.detoured = orca->used_orca;
  }
  return t;
}

/// argv helper: --sf=<double> with a default.
inline double ArgScale(int argc, char** argv, double def) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--sf=", 0) == 0) return std::atof(a.c_str() + 5);
  }
  return def;
}

/// argv helper: bare boolean flag (e.g. --json).
inline bool ArgFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == name) return true;
  }
  return false;
}

/// argv helper: --<prefix><int64> with a default (prefix includes the '=').
inline long long ArgInt(int argc, char** argv, const char* prefix,
                        long long def) {
  const size_t n = std::string(prefix).size();
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return std::atoll(a.c_str() + n);
  }
  return def;
}

/// Machine-readable results sink for the --json flag: writes
/// BENCH_<name>.json (flat name -> number map) to the working directory so
/// CI jobs can trend bench output without scraping stdout.
inline void WriteBenchJson(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const std::string path = "BENCH_" + name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\"", name.c_str());
  for (const auto& m : metrics) {
    std::fprintf(f, ",\n  \"%s\": %.6f", m.first.c_str(), m.second);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

inline void PrintHeader(const char* title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title);
  std::printf("============================================================\n");
}

}  // namespace taurus_bench

#endif  // TAURUS_BENCH_BENCH_UTIL_H_
