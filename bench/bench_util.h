#ifndef TAURUS_BENCH_BENCH_UTIL_H_
#define TAURUS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/database.h"

namespace taurus_bench {

/// One query's measurement across the two optimizer paths.
struct QueryTiming {
  int query_number = 0;
  bool mysql_ok = false;
  bool orca_ok = false;
  double mysql_ms = 0.0;       ///< execution time, MySQL plan
  double orca_ms = 0.0;        ///< execution time, Orca plan
  double mysql_opt_ms = 0.0;   ///< compile time, MySQL optimizer
  double orca_opt_ms = 0.0;    ///< compile time incl. the Orca detour
  bool detoured = false;       ///< the "Orca" run actually took the detour
  size_t rows = 0;
};

/// Runs `sql` with the MySQL optimizer forced, then with the integration's
/// automatic routing (threshold + fallback) — matching the paper's setup,
/// where sub-threshold queries execute with MySQL plans in both runs.
inline QueryTiming TimeBothPaths(taurus::Database* db, int number,
                                 const std::string& sql) {
  QueryTiming t;
  t.query_number = number;
  auto mysql = db->Query(sql, taurus::OptimizerPath::kMySql);
  if (mysql.ok()) {
    t.mysql_ok = true;
    t.mysql_ms = mysql->execute_ms;
    t.mysql_opt_ms = mysql->optimize_ms;
    t.rows = mysql->rows.size();
  }
  auto orca = db->Query(sql, taurus::OptimizerPath::kAuto);
  if (orca.ok()) {
    t.orca_ok = true;
    t.orca_ms = orca->execute_ms;
    t.orca_opt_ms = orca->optimize_ms;
    t.detoured = orca->used_orca;
  }
  return t;
}

/// argv helper: --sf=<double> with a default.
inline double ArgScale(int argc, char** argv, double def) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--sf=", 0) == 0) return std::atof(a.c_str() + 5);
  }
  return def;
}

inline void PrintHeader(const char* title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title);
  std::printf("============================================================\n");
}

}  // namespace taurus_bench

#endif  // TAURUS_BENCH_BENCH_UTIL_H_
