// Reproduces Table 1: total query-compilation (EXPLAIN) time for the
// TPC-H and TPC-DS suites under three compilers:
//   MySQL                      (no detour)
//   MySQL + Orca  EXHAUSTIVE
//   MySQL + Orca  EXHAUSTIVE2
// with the complex-query threshold set to 1 so every query detours —
// exactly the paper's Section 6.3 setup.
//
// Expected shape: Orca compilations are significantly slower than MySQL's;
// EXHAUSTIVE2 ~ EXHAUSTIVE on TPC-H; EXHAUSTIVE2 adds noticeable overhead
// on complex TPC-DS queries, concentrated in the CTE-heavy Q14 and Q64.
//
// Usage: table1_compile_overhead [--sf=0.001] [--json]
//   --json writes BENCH_table1_compile_overhead.json for CI trending.

#include <algorithm>
#include <map>

#include "bench_util.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

using namespace taurus_bench;  // NOLINT

namespace {

struct SuiteTotals {
  double mysql = 0;
  double exhaustive = 0;
  double exhaustive2 = 0;
  std::map<int, double> ex_per_query;
  std::map<int, double> ex2_per_query;
};

SuiteTotals CompileSuite(taurus::Database* db,
                         const std::vector<std::string>& queries) {
  SuiteTotals totals;
  db->router_config().complex_query_threshold = 1;  // paper: all detour
  // Warm the metadata-provider cache so the first measured strategy does
  // not absorb all of the one-time DXL round trips.
  db->orca_config().strategy = taurus::JoinSearchStrategy::kGreedy;
  for (const std::string& q : queries) {
    (void)db->Compile(q, taurus::OptimizerPath::kAuto);
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    int q = static_cast<int>(i) + 1;
    auto mysql = db->Compile(queries[i], taurus::OptimizerPath::kMySql);
    if (mysql.ok()) totals.mysql += (*mysql)->optimize_ms;
    db->orca_config().strategy = taurus::JoinSearchStrategy::kExhaustive;
    auto ex = db->Compile(queries[i], taurus::OptimizerPath::kAuto);
    if (ex.ok()) {
      totals.exhaustive += (*ex)->optimize_ms;
      totals.ex_per_query[q] = (*ex)->optimize_ms;
    }
    db->orca_config().strategy = taurus::JoinSearchStrategy::kExhaustive2;
    auto ex2 = db->Compile(queries[i], taurus::OptimizerPath::kAuto);
    if (ex2.ok()) {
      totals.exhaustive2 += (*ex2)->optimize_ms;
      totals.ex2_per_query[q] = (*ex2)->optimize_ms;
    }
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = ArgScale(argc, argv, 0.001);

  taurus::Database tpch;
  if (!taurus::SetupTpch(&tpch, sf * 2).ok()) return 1;
  taurus::Database tpcds;
  if (!taurus::SetupTpcds(&tpcds, sf).ok()) return 1;

  PrintHeader("Table 1 — Orca query compilation overhead "
              "(total EXPLAIN time, ms)");
  std::printf("complex query threshold = 1 (every query takes the detour)\n\n");

  SuiteTotals h = CompileSuite(&tpch, taurus::TpchQueries());
  SuiteTotals ds = CompileSuite(&tpcds, taurus::TpcdsQueries());

  std::printf("%-28s %10s %10s\n", "Compiler", "TPC-H", "TPC-DS");
  std::printf("%-28s %10.1f %10.1f\n", "MySQL", h.mysql, ds.mysql);
  std::printf("%-28s %10.1f %10.1f\n", "MySQL + Orca-EXHAUSTIVE",
              h.exhaustive, ds.exhaustive);
  std::printf("%-28s %10.1f %10.1f\n", "MySQL + Orca-EXHAUSTIVE2",
              h.exhaustive2, ds.exhaustive2);
  std::printf("\npaper (seconds): MySQL 0.17 / 1.09; +EXHAUSTIVE 2.06 / "
              "48.08; +EXHAUSTIVE2 1.85 / 74.21\n");

  std::printf("\nTPC-DS EXHAUSTIVE2 - EXHAUSTIVE per-query deltas "
              "(largest 5; paper: Q14 +30.0s, Q64 +2.1s dominate):\n");
  std::vector<std::pair<double, int>> deltas;
  for (const auto& [q, t2] : ds.ex2_per_query) {
    auto it = ds.ex_per_query.find(q);
    if (it != ds.ex_per_query.end()) {
      deltas.emplace_back(t2 - it->second, q);
    }
  }
  std::sort(deltas.rbegin(), deltas.rend());
  for (size_t i = 0; i < deltas.size() && i < 5; ++i) {
    std::printf("  Q%-4d %+9.2f ms\n", deltas[i].second, deltas[i].first);
  }

  if (ArgFlag(argc, argv, "--json")) {
    WriteBenchJson("table1_compile_overhead",
                   {{"sf", sf},
                    {"tpch_mysql_ms", h.mysql},
                    {"tpch_exhaustive_ms", h.exhaustive},
                    {"tpch_exhaustive2_ms", h.exhaustive2},
                    {"tpcds_mysql_ms", ds.mysql},
                    {"tpcds_exhaustive_ms", ds.exhaustive},
                    {"tpcds_exhaustive2_ms", ds.exhaustive2}});
  }
  return 0;
}
