// Reproduces the paper's Section 3.1 example (Fig. 4 / Fig. 5): TPC-DS
// Q72, the 11-table snowflake. Prints both optimizers' plans and the
// execution times. In the paper the MySQL plan chains nested-loop joins
// from the fact table with a single non-cost-based hash join (288 s),
// while Orca picks a plan where most joins are hash joins, for an 8.5X
// improvement (34 s). The *shape* to check here: the Orca plan uses
// several hash joins and runs substantially faster.
//
// Usage: fig04_05_q72_plans [--sf=0.001]

#include "bench_util.h"
#include "workloads/tpcds.h"

using namespace taurus_bench;  // NOLINT

namespace {

int CountOccurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = ArgScale(argc, argv, 0.001);
  taurus::Database db;
  if (!taurus::SetupTpcds(&db, sf).ok()) return 1;
  db.router_config().complex_query_threshold = 2;

  const std::string& q72 = taurus::TpcdsQueries()[71];

  PrintHeader("Fig. 4 — TPC-DS Q72 plan, MySQL optimizer");
  auto mysql_explain = db.Explain(q72, taurus::OptimizerPath::kMySql);
  if (mysql_explain.ok()) std::printf("%s", mysql_explain->c_str());

  PrintHeader("Fig. 5 — TPC-DS Q72 plan, Orca");
  auto orca_explain = db.Explain(q72, taurus::OptimizerPath::kOrca);
  if (orca_explain.ok()) std::printf("%s", orca_explain->c_str());

  if (mysql_explain.ok() && orca_explain.ok()) {
    std::printf("\njoin-method mix:\n");
    std::printf("  MySQL plan: %d hash joins, %d nested-loop joins "
                "(paper: 1 hash, 10 NLJ)\n",
                CountOccurrences(*mysql_explain, "hash join") +
                    CountOccurrences(*mysql_explain, "Hash semijoin") +
                    CountOccurrences(*mysql_explain, "Hash antijoin"),
                CountOccurrences(*mysql_explain, "Nested loop"));
    std::printf("  Orca plan:  %d hash joins, %d nested-loop joins "
                "(paper: 6 hash, 4 NLJ; bushy)\n",
                CountOccurrences(*orca_explain, "hash join") +
                    CountOccurrences(*orca_explain, "Hash semijoin") +
                    CountOccurrences(*orca_explain, "Hash antijoin"),
                CountOccurrences(*orca_explain, "Nested loop"));
  }

  QueryTiming t = TimeBothPaths(&db, 72, q72);
  if (t.mysql_ok && t.orca_ok) {
    std::printf("\nexecution: mysql %.2f ms, orca %.2f ms -> %.2fx "
                "(paper: 288 s vs 34 s = 8.5X)\n",
                t.mysql_ms, t.orca_ms,
                t.orca_ms > 0 ? t.mysql_ms / t.orca_ms : 0.0);
  }
  return 0;
}
