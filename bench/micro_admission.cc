// Admission-controller overload bench: the server core's behavior when
// arrivals exceed run slots.
//
//   admit_release_qps_t<N> — raw Admit/Release round-trips through an
//                            uncontended controller at 1/8 threads (the
//                            fixed per-query admission overhead).
//   overload_*             — 32 sessions x 4 queries against 2 run slots, a
//                            shallow queue and a short deadline: end-to-end
//                            qps plus how the offered load decomposed into
//                            direct admits, sheds and structured
//                            rejections. Every query must succeed, shed, or
//                            reject — anything else aborts the bench.
//
// Usage: micro_admission [--ms=200] [--json]
//   --json writes BENCH_admission.json for CI trending.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/server.h"
#include "workloads/tpch.h"

using namespace taurus_bench;  // NOLINT

namespace {

/// Aggregate Admit+Release round-trips/sec with `threads` workers.
double AdmitReleaseQps(taurus::Server* server, int threads, int duration_ms) {
  std::atomic<bool> stop{false};
  std::atomic<long long> total{0};
  std::vector<std::thread> pool;
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      long long ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto ticket = server->admission().Admit(taurus::AdmissionRequest{});
        if (!ticket.ok()) std::abort();  // uncontended: must always admit
        server->admission().Release(ticket.value());
        ++ops;
      }
      total.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : pool) th.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return static_cast<double>(total.load()) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const int duration_ms = static_cast<int>(ArgInt(argc, argv, "--ms=", 200));
  const bool json = ArgFlag(argc, argv, "--json");

  taurus::Database db;
  {
    auto st = taurus::SetupTpch(&db, 0.001);
    if (!st.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  db.router_config().complex_query_threshold = 1;

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("hardware_workers",
                       taurus::ThreadPool::HardwareWorkers());

  // Leg 1: raw admission overhead, no slot contention.
  PrintHeader("admission controller: raw Admit/Release round-trips");
  {
    taurus::Server server(&db);
    server.server_config().max_concurrent_queries = 1 << 20;
    for (int threads : {1, 8}) {
      double qps = AdmitReleaseQps(&server, threads, duration_ms);
      std::printf("  threads=%-2d %25.0f qps\n", threads, qps);
      metrics.emplace_back("admit_release_qps_t" + std::to_string(threads),
                           qps);
    }
  }

  // Leg 2: overload — 32 sessions of 4 kAuto queries against 2 run slots.
  PrintHeader("admission controller: overload (32 sessions, 2 run slots)");
  {
    taurus::Server server(&db);
    server.server_config().max_concurrent_queries = 2;
    server.server_config().admission_queue_depth = 4;
    server.server_config().session_deadline_ms = 25.0;
    server.server_config().shed_to_mysql = true;

    constexpr int kSessions = 32;
    constexpr int kQueriesPerSession = 4;
    const std::string& sql = taurus::TpchQueries()[5];  // Q6: cheap scan

    std::atomic<int> ok{0}, shed{0}, rejected{0};
    std::atomic<double> wait_ms_sum{0.0};
    std::vector<std::thread> threads;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSessions; ++i) {
      threads.emplace_back([&] {
        auto session = server.CreateSession();
        if (!session.ok()) std::abort();
        for (int q = 0; q < kQueriesPerSession; ++q) {
          auto res = session.value()->Query(sql, taurus::OptimizerPath::kAuto);
          if (res.ok()) {
            ok.fetch_add(1);
            if (res->shed) shed.fetch_add(1);
            double expected = wait_ms_sum.load();
            while (!wait_ms_sum.compare_exchange_weak(
                expected, expected + res->admission_wait_ms)) {
            }
          } else if (res.status().code() ==
                         taurus::StatusCode::kResourceExhausted &&
                     res.status().origin_subsystem() == "server.admission") {
            rejected.fetch_add(1);
          } else {
            std::fprintf(stderr, "unexpected failure: %s\n",
                         res.status().ToString().c_str());
            std::abort();
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    const int total = kSessions * kQueriesPerSession;
    const double qps = static_cast<double>(ok.load()) / secs;
    const double avg_wait =
        ok.load() > 0 ? wait_ms_sum.load() / ok.load() : 0.0;
    std::printf("  offered=%d ok=%d shed=%d rejected=%d\n", total, ok.load(),
                shed.load(), rejected.load());
    std::printf("  completed qps=%.0f  avg admission wait=%.2f ms\n", qps,
                avg_wait);
    if (ok.load() + rejected.load() != total) {
      std::fprintf(stderr, "lost queries under overload\n");
      return 1;
    }

    metrics.emplace_back("overload_offered", total);
    metrics.emplace_back("overload_ok", ok.load());
    metrics.emplace_back("overload_shed", shed.load());
    metrics.emplace_back("overload_rejected", rejected.load());
    metrics.emplace_back("overload_qps", qps);
    metrics.emplace_back("overload_avg_wait_ms", avg_wait);
  }

  if (json) WriteBenchJson("admission", metrics);
  return 0;
}
