// Reproduces Fig. 12: the Orca-vs-MySQL ratio as a function of query run
// time. The paper's observation: Orca plans tend to be *slower* only on
// short queries (compile overhead + MySQL is already fine on simple
// queries), and almost always faster on long queries. The output is the
// scatter series (x = MySQL-plan run time, y = orca_time / mysql_time),
// sorted by x, plus the means for the short and long halves.
//
// The paper measures total time including optimization for this figure;
// both components are reported.
//
// Usage: fig12_short_queries [--sf=0.001]

#include <algorithm>

#include "bench_util.h"
#include "workloads/tpcds.h"

using namespace taurus_bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ArgScale(argc, argv, 0.001);
  taurus::Database db;
  auto st = taurus::SetupTpcds(&db, sf);
  if (!st.ok()) {
    std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }
  db.router_config().complex_query_threshold = 2;

  PrintHeader(
      "Fig. 12 — Orca slowdown ratio vs MySQL-plan run time (TPC-DS)");
  std::printf("ratio > 1 means the Orca detour was slower "
              "(total = optimize + execute)\n\n");

  struct Point {
    int q;
    double mysql_total;
    double ratio;
  };
  std::vector<Point> points;
  const auto& queries = taurus::TpcdsQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryTiming t = TimeBothPaths(&db, static_cast<int>(i) + 1, queries[i]);
    if (!t.mysql_ok || !t.orca_ok) continue;
    double mysql_total = t.mysql_ms + t.mysql_opt_ms;
    double orca_total = t.orca_ms + t.orca_opt_ms;
    if (mysql_total <= 0) continue;
    points.push_back({t.query_number, mysql_total, orca_total / mysql_total});
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) {
              return a.mysql_total < b.mysql_total;
            });

  std::printf("%-6s %16s %14s\n", "query", "mysql_total_ms", "orca/mysql");
  for (const Point& p : points) {
    std::printf("Q%-5d %16.2f %14.3f%s\n", p.q, p.mysql_total, p.ratio,
                p.ratio > 1.0 ? "   <- Orca slower" : "");
  }

  // Short vs long halves.
  size_t half = points.size() / 2;
  double short_mean = 0, long_mean = 0;
  int short_slower = 0, long_slower = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (i < half) {
      short_mean += points[i].ratio;
      short_slower += points[i].ratio > 1.0;
    } else {
      long_mean += points[i].ratio;
      long_slower += points[i].ratio > 1.0;
    }
  }
  if (half > 0) {
    std::printf("\nshorter half: mean ratio %.3f, Orca slower on %d of %zu\n",
                short_mean / half, short_slower, half);
    std::printf("longer half:  mean ratio %.3f, Orca slower on %d of %zu\n",
                long_mean / (points.size() - half), long_slower,
                points.size() - half);
    std::printf("\npaper's claim: Orca loses only on short queries (e.g. "
                "Q56 at 5.6x slower),\nand is almost always faster on long "
                "ones.\n");
  }
  return 0;
}
