// Micro-benchmarks for the runtime pieces the cost model abstracts:
// sequential scan rate, index lookup rate, hash join build/probe rates,
// expression evaluation, the LIKE matcher, histogram selectivity probes,
// and the order-preserving string-prefix encoding. Useful when re-tuning
// CostParams (the paper's Section 9 calls out Orca cost-model tuning for
// InnoDB as future work; these are the measurements that tuning needs).
//
// --json writes BENCH_executor.json (flat name -> ms/iter map) for CI
// trending; other flags pass through to google-benchmark.

#include <benchmark/benchmark.h>

#include "bench_json_reporter.h"

#include "catalog/histogram.h"
#include "common/rng.h"
#include "common/strings.h"
#include "engine/database.h"

namespace taurus {
namespace {

Database* Db() {
  static Database* db = [] {
    auto* d = new Database();
    if (!d->ExecuteSql("CREATE TABLE f (id INT NOT NULL PRIMARY KEY, "
                       "k INT NOT NULL, v DOUBLE NOT NULL, "
                       "s VARCHAR(20) NOT NULL)")
             .ok()) {
      std::abort();
    }
    if (!d->ExecuteSql("CREATE INDEX f_k ON f (k)").ok()) std::abort();
    if (!d->ExecuteSql("CREATE TABLE d (id INT NOT NULL PRIMARY KEY, "
                       "name VARCHAR(20) NOT NULL)")
             .ok()) {
      std::abort();
    }
    Rng rng(11);
    std::vector<Row> rows;
    for (int i = 0; i < 50000; ++i) {
      rows.push_back({Value::Int(i), Value::Int(i % 500),
                      Value::Double(rng.NextDouble() * 1000),
                      Value::Str(rng.NextString(5, 15))});
    }
    if (!d->BulkLoad("f", std::move(rows)).ok()) std::abort();
    std::vector<Row> dims;
    for (int i = 0; i < 500; ++i) {
      dims.push_back({Value::Int(i), Value::Str("d" + std::to_string(i))});
    }
    if (!d->BulkLoad("d", std::move(dims)).ok()) std::abort();
    if (!d->AnalyzeAll().ok()) std::abort();
    return d;
  }();
  return db;
}

void BM_SequentialScan(benchmark::State& state) {
  Database* db = Db();
  for (auto _ : state) {
    auto r = db->Query("SELECT COUNT(*) FROM f WHERE v > 500",
                       OptimizerPath::kMySql);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_SequentialScan);

void BM_IndexLookupJoin(benchmark::State& state) {
  Database* db = Db();
  for (auto _ : state) {
    auto r = db->Query(
        "SELECT COUNT(*) FROM d, f WHERE d.id = f.k AND d.id < 50",
        OptimizerPath::kMySql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexLookupJoin);

void BM_HashJoin(benchmark::State& state) {
  Database* db = Db();
  for (auto _ : state) {
    // v has no index: the equality forces a hash join.
    auto r = db->Query(
        "SELECT COUNT(*) FROM f f1, f f2 WHERE f1.id = f2.k",
        OptimizerPath::kOrca);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HashJoin);

void BM_HashAggregation(benchmark::State& state) {
  Database* db = Db();
  for (auto _ : state) {
    auto r = db->Query("SELECT k, COUNT(*), SUM(v) FROM f GROUP BY k",
                       OptimizerPath::kMySql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HashAggregation);

void BM_SortLimit(benchmark::State& state) {
  Database* db = Db();
  for (auto _ : state) {
    auto r = db->Query("SELECT id FROM f ORDER BY v DESC LIMIT 10",
                       OptimizerPath::kMySql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SortLimit);

void BM_LikeMatcher(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextString(10, 40));
  for (auto _ : state) {
    int hits = 0;
    for (const std::string& v : values) {
      hits += SqlLikeMatch(v, "%ab%cd%");
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LikeMatcher);

void BM_HistogramProbe(benchmark::State& state) {
  Rng rng(7);
  std::vector<Value> values;
  for (int i = 0; i < 100000; ++i) {
    values.push_back(Value::Int(rng.Uniform(0, 1000000)));
  }
  Histogram h = Histogram::Build(std::move(values), 64);
  for (auto _ : state) {
    double s = 0;
    for (int i = 0; i < 100; ++i) {
      s += h.SelectivityLess(Value::Int(i * 10000), false);
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_HistogramProbe);

void BM_StringPrefixEncoding(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextString(0, 24));
  for (auto _ : state) {
    int64_t acc = 0;
    for (const std::string& v : values) acc ^= EncodeStringPrefix(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_StringPrefixEncoding);

}  // namespace
}  // namespace taurus

int main(int argc, char** argv) {
  return taurus_bench::GBenchJsonMain(argc, argv, "executor");
}
