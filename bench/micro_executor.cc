// Micro-benchmarks for the runtime pieces the cost model abstracts:
// sequential scan rate, index lookup rate, hash join build/probe rates,
// expression evaluation, the LIKE matcher, histogram selectivity probes,
// and the order-preserving string-prefix encoding. Useful when re-tuning
// CostParams (the paper's Section 9 calls out Orca cost-model tuning for
// InnoDB as future work; these are the measurements that tuning needs).
//
// --json writes BENCH_executor.json (flat name -> ms/iter map) for CI
// trending; other flags pass through to google-benchmark.
//
// A hand-rolled batch-vs-Volcano leg runs first: the same scan / aggregate
// / hash-join queries once with ExecutorConfig::enable_batch off (the
// row-at-a-time Volcano executor) and once on (the vectorized batch
// executor), verifying identical results and reporting the speedup.
// --json also writes BENCH_exec_batch.json with these columns.

#include <benchmark/benchmark.h>

#include "bench_json_reporter.h"

#include "catalog/histogram.h"
#include "common/rng.h"
#include "common/strings.h"
#include "engine/database.h"

namespace taurus {
namespace {

Database* Db() {
  static Database* db = [] {
    auto* d = new Database();
    if (!d->ExecuteSql("CREATE TABLE f (id INT NOT NULL PRIMARY KEY, "
                       "k INT NOT NULL, v DOUBLE NOT NULL, "
                       "s VARCHAR(20) NOT NULL)")
             .ok()) {
      std::abort();
    }
    if (!d->ExecuteSql("CREATE INDEX f_k ON f (k)").ok()) std::abort();
    if (!d->ExecuteSql("CREATE TABLE d (id INT NOT NULL PRIMARY KEY, "
                       "name VARCHAR(20) NOT NULL)")
             .ok()) {
      std::abort();
    }
    Rng rng(11);
    std::vector<Row> rows;
    for (int i = 0; i < 50000; ++i) {
      rows.push_back({Value::Int(i), Value::Int(i % 500),
                      Value::Double(rng.NextDouble() * 1000),
                      Value::Str(rng.NextString(5, 15))});
    }
    if (!d->BulkLoad("f", std::move(rows)).ok()) std::abort();
    std::vector<Row> dims;
    for (int i = 0; i < 500; ++i) {
      dims.push_back({Value::Int(i), Value::Str("d" + std::to_string(i))});
    }
    if (!d->BulkLoad("d", std::move(dims)).ok()) std::abort();
    if (!d->AnalyzeAll().ok()) std::abort();
    return d;
  }();
  return db;
}

void BM_SequentialScan(benchmark::State& state) {
  Database* db = Db();
  for (auto _ : state) {
    auto r = db->Query("SELECT COUNT(*) FROM f WHERE v > 500",
                       OptimizerPath::kMySql);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_SequentialScan);

void BM_IndexLookupJoin(benchmark::State& state) {
  Database* db = Db();
  for (auto _ : state) {
    auto r = db->Query(
        "SELECT COUNT(*) FROM d, f WHERE d.id = f.k AND d.id < 50",
        OptimizerPath::kMySql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexLookupJoin);

void BM_HashJoin(benchmark::State& state) {
  Database* db = Db();
  for (auto _ : state) {
    // v has no index: the equality forces a hash join.
    auto r = db->Query(
        "SELECT COUNT(*) FROM f f1, f f2 WHERE f1.id = f2.k",
        OptimizerPath::kOrca);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HashJoin);

void BM_HashAggregation(benchmark::State& state) {
  Database* db = Db();
  for (auto _ : state) {
    auto r = db->Query("SELECT k, COUNT(*), SUM(v) FROM f GROUP BY k",
                       OptimizerPath::kMySql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HashAggregation);

void BM_SortLimit(benchmark::State& state) {
  Database* db = Db();
  for (auto _ : state) {
    auto r = db->Query("SELECT id FROM f ORDER BY v DESC LIMIT 10",
                       OptimizerPath::kMySql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SortLimit);

void BM_LikeMatcher(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextString(10, 40));
  for (auto _ : state) {
    int hits = 0;
    for (const std::string& v : values) {
      hits += SqlLikeMatch(v, "%ab%cd%");
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LikeMatcher);

void BM_HistogramProbe(benchmark::State& state) {
  Rng rng(7);
  std::vector<Value> values;
  for (int i = 0; i < 100000; ++i) {
    values.push_back(Value::Int(rng.Uniform(0, 1000000)));
  }
  Histogram h = Histogram::Build(std::move(values), 64);
  for (auto _ : state) {
    double s = 0;
    for (int i = 0; i < 100; ++i) {
      s += h.SelectivityLess(Value::Int(i * 10000), false);
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_HistogramProbe);

void BM_StringPrefixEncoding(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextString(0, 24));
  for (auto _ : state) {
    int64_t acc = 0;
    for (const std::string& v : values) acc ^= EncodeStringPrefix(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_StringPrefixEncoding);

/// Best-of-`repeat` execution time for `sql` in the current executor mode;
/// returns the result rows (for the batch-vs-Volcano equality check) and
/// whether any pipeline actually ran batched.
double BestMs(Database* db, const std::string& sql, OptimizerPath path,
              int repeat, std::vector<Row>* rows, bool* batched) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    auto res = db->Query(sql, path);
    if (!res.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   res.status().ToString().c_str());
      std::exit(1);
    }
    if (r == 0 || res->execute_ms < best) best = res->execute_ms;
    *rows = std::move(res->rows);
    *batched = res->batch_pipelines > 0;
  }
  return best;
}

/// The batch-vs-Volcano leg: same queries, both executor modes, identical
/// results enforced, speedup reported (and written to BENCH_exec_batch.json
/// under --json).
void RunBatchVsVolcano(bool want_json) {
  Database* db = Db();
  struct Leg {
    const char* key;
    const char* sql;
    OptimizerPath path;
  };
  // Q6-shaped scan+filter+aggregate (the scan-heavy pipeline), Q1-shaped
  // grouped aggregate, and a hash-join probe into the 50K-row fact table.
  const Leg legs[] = {
      {"scan_filter_agg",
       "SELECT COUNT(*), SUM(v) FROM f WHERE v > 100 AND v < 900",
       OptimizerPath::kMySql},
      {"group_agg", "SELECT k, COUNT(*), SUM(v) FROM f GROUP BY k",
       OptimizerPath::kMySql},
      {"hash_join_probe",
       "SELECT COUNT(*) FROM f f1, f f2 WHERE f1.id = f2.k",
       OptimizerPath::kOrca},
  };
  const int repeat = 5;
  std::printf("Batch vs Volcano executor (best of %d runs)\n", repeat);
  std::printf("%-18s %12s %12s %10s\n", "pipeline", "volcano_ms", "batch_ms",
              "speedup");
  std::vector<std::pair<std::string, double>> metrics;
  for (const Leg& leg : legs) {
    std::vector<Row> volcano_rows, batch_rows;
    bool batched = false;
    db->exec_config().enable_batch = false;
    double volcano_ms =
        BestMs(db, leg.sql, leg.path, repeat, &volcano_rows, &batched);
    db->exec_config().enable_batch = true;
    double batch_ms =
        BestMs(db, leg.sql, leg.path, repeat, &batch_rows, &batched);
    if (volcano_rows != batch_rows) {
      std::fprintf(stderr, "%s: batch results differ from Volcano!\n",
                   leg.key);
      std::exit(1);
    }
    double speedup = batch_ms > 0 ? volcano_ms / batch_ms : 0.0;
    std::printf("%-18s %12.3f %12.3f %9.2fx%s\n", leg.key, volcano_ms,
                batch_ms, speedup, batched ? "" : "   (stayed row-mode)");
    metrics.emplace_back(std::string(leg.key) + "_volcano_ms", volcano_ms);
    metrics.emplace_back(std::string(leg.key) + "_batch_ms", batch_ms);
    metrics.emplace_back(std::string(leg.key) + "_speedup", speedup);
  }
  std::printf("\n");
  if (want_json) taurus_bench::WriteBenchJson("exec_batch", metrics);
}

}  // namespace
}  // namespace taurus

int main(int argc, char** argv) {
  bool want_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") want_json = true;
  }
  taurus::RunBatchVsVolcano(want_json);
  return taurus_bench::GBenchJsonMain(argc, argv, "executor");
}
