// Workload-introspection overhead: the statement-digest fold plus the
// flight-recorder ring append happen once per query end, under two leaf
// locks (DESIGN.md section 15). This bench bounds their cost on the
// worst case for fixed per-query overhead — the fastest query we have
// (a plan-cache hit over a 5-row table), where the fold is the largest
// fraction of total work.
//
//   qps_on        — full Database::Query hot path, digests + recorder on
//   qps_off       — same loop with both stores disabled
//   overhead_pct  — (qps_off - qps_on) / qps_off * 100
//   record_ns     — raw DigestStore::Record cost, isolated
//
// Modes alternate across rounds (off/on/off/on/...) and each mode keeps
// its best round, so drift in either direction hurts both sides equally.
// The acceptance bar is overhead_pct <= 2 on the hit path.
//
// Usage: micro_digest [--ms=300] [--json]
//   --json writes BENCH_digest.json for CI trending.

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "engine/database.h"
#include "obs/digest_store.h"
#include "workloads/tpch.h"

using namespace taurus_bench;  // NOLINT

namespace {

/// Completed queries/sec of `duration_ms` of back-to-back Query calls.
double MeasureQueryQps(taurus::Database* db, const std::string& sql,
                       int duration_ms) {
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::milliseconds(duration_ms);
  long long ops = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    auto r = db->Query(sql, taurus::OptimizerPath::kMySql);
    if (!r.ok()) std::abort();
    ++ops;
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return static_cast<double>(ops) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const int duration_ms = static_cast<int>(ArgInt(argc, argv, "--ms=", 300));
  const bool json = ArgFlag(argc, argv, "--json");

  taurus::Database db;
  {
    auto st = taurus::SetupTpch(&db, 0.001);
    if (!st.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const std::string sql = "SELECT COUNT(*) FROM region";
  // Warm: plan compiled and cached, digest row allocated.
  for (int i = 0; i < 3; ++i) {
    auto r = db.Query(sql, taurus::OptimizerPath::kMySql);
    if (!r.ok() || (i > 0 && !r->plan_cache_hit)) {
      std::fprintf(stderr, "warm run did not produce a cache hit\n");
      return 1;
    }
  }

  PrintHeader("workload-introspection overhead (digest fold + ring append)");
  std::printf("query: \"%s\" (plan-cache hit, single thread)\n", sql.c_str());

  constexpr int kRounds = 3;  // per mode, alternating; best round kept
  double qps_on = 0.0, qps_off = 0.0;
  for (int round = 0; round < 2 * kRounds; ++round) {
    const bool on = (round % 2) != 0;  // off first: cold round hits "off"
    db.digest_config().enable = on;
    db.flight_recorder_config().enable = on;
    double qps = MeasureQueryQps(&db, sql, duration_ms);
    if (on && qps > qps_on) qps_on = qps;
    if (!on && qps > qps_off) qps_off = qps;
  }
  db.digest_config().enable = true;
  db.flight_recorder_config().enable = true;

  const double overhead_pct =
      qps_off > 0.0 ? (qps_off - qps_on) / qps_off * 100.0 : 0.0;
  std::printf("\n%-22s %14.0f\n", "qps introspection on", qps_on);
  std::printf("%-22s %14.0f\n", "qps introspection off", qps_off);
  std::printf("%-22s %14.2f\n", "overhead_pct", overhead_pct);

  // Raw fold cost, isolated from the query around it.
  taurus::DigestStoreConfig cfg;
  taurus::DigestStore store(cfg);
  taurus::DigestSample sample;
  sample.fingerprint = 0x5eedf00d;
  sample.canonical = &sql;
  sample.latency_ms = 0.05;
  sample.used_orca = false;
  constexpr int kRecords = 200000;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kRecords; ++i) store.Record(sample);
  double record_ns = std::chrono::duration<double, std::nano>(
                         std::chrono::steady_clock::now() - t0)
                         .count() /
                     kRecords;
  std::printf("%-22s %14.1f\n", "record_ns", record_ns);

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("qps_on", qps_on);
  metrics.emplace_back("qps_off", qps_off);
  metrics.emplace_back("overhead_pct", overhead_pct);
  metrics.emplace_back("record_ns", record_ns);
  if (json) WriteBenchJson("digest", metrics);
  return 0;
}
