// Feedback-loop micro-benchmark: first-vs-second optimization of the same
// statement fingerprint on TPC-H Q8 and Q17 with the cardinality feedback
// loop enabled. Reports the harvested max q-error of each run (the drop
// from run 1 to run 2 is the loop closing), the cardinality overrides the
// second compile consumed, and the execution-time delta of the
// re-optimized plan. --json writes BENCH_feedback.json.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "engine/database.h"
#include "workloads/tpch.h"

namespace {

struct FeedbackRun {
  bool ok = false;
  double first_qerror = 1.0;
  double second_qerror = 1.0;
  double first_exec_ms = 0.0;
  double second_exec_ms = 0.0;
  double first_opt_ms = 0.0;
  double second_opt_ms = 0.0;
  long long actual_overrides = 0;
  long long sketch_overrides = 0;
  bool drift_bumped = false;
};

/// Runs `sql` twice through the Orca path on a feedback-enabled engine and
/// measures what the second optimization learned from the first execution.
FeedbackRun MeasureQuery(taurus::Database* db, const std::string& sql) {
  FeedbackRun r;
  auto run1 = db->Query(sql, taurus::OptimizerPath::kOrca);
  if (!run1.ok()) {
    std::fprintf(stderr, "run 1 failed: %s\n",
                 run1.status().ToString().c_str());
    return r;
  }
  r.first_qerror = run1->feedback_max_q_error;
  r.first_exec_ms = run1->execute_ms;
  r.first_opt_ms = run1->optimize_ms;
  r.drift_bumped = run1->feedback_version_bumped;
  auto run2 = db->Query(sql, taurus::OptimizerPath::kOrca);
  if (!run2.ok()) {
    std::fprintf(stderr, "run 2 failed: %s\n",
                 run2.status().ToString().c_str());
    return r;
  }
  r.second_qerror = run2->feedback_max_q_error;
  r.second_exec_ms = run2->execute_ms;
  r.second_opt_ms = run2->optimize_ms;
  r.actual_overrides = run2->feedback_actual_overrides;
  r.sketch_overrides = run2->feedback_sketch_overrides;
  r.ok = true;
  return r;
}

void Report(const char* label, const FeedbackRun& r,
            std::vector<std::pair<std::string, double>>* metrics) {
  std::printf(
      "%-4s  qerror %8.2f -> %8.2f   exec %8.3f -> %8.3f ms   "
      "opt %7.3f -> %7.3f ms   overrides actual=%lld sketch=%lld%s\n",
      label, r.first_qerror, r.second_qerror, r.first_exec_ms,
      r.second_exec_ms, r.first_opt_ms, r.second_opt_ms, r.actual_overrides,
      r.sketch_overrides, r.drift_bumped ? "   [drift bump]" : "");
  const std::string p = label;
  metrics->emplace_back(p + "_first_qerror", r.first_qerror);
  metrics->emplace_back(p + "_second_qerror", r.second_qerror);
  metrics->emplace_back(p + "_first_exec_ms", r.first_exec_ms);
  metrics->emplace_back(p + "_second_exec_ms", r.second_exec_ms);
  metrics->emplace_back(p + "_first_opt_ms", r.first_opt_ms);
  metrics->emplace_back(p + "_second_opt_ms", r.second_opt_ms);
  metrics->emplace_back(p + "_actual_overrides",
                        static_cast<double>(r.actual_overrides));
  metrics->emplace_back(p + "_sketch_overrides",
                        static_cast<double>(r.sketch_overrides));
  metrics->emplace_back(p + "_drift_bumped", r.drift_bumped ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = taurus_bench::ArgScale(argc, argv, 0.01);
  const bool json = taurus_bench::ArgFlag(argc, argv, "--json");

  taurus_bench::PrintHeader(
      "Cardinality feedback: first vs second optimization (TPC-H Q8/Q17)");
  std::printf("scale factor %.3f\n\n", sf);

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("sf", sf);
  const std::vector<std::pair<const char*, int>> queries = {{"q8", 8},
                                                            {"q17", 17}};
  bool all_ok = true;
  for (const auto& [label, number] : queries) {
    // Fresh engine per query so each pair of runs starts from an empty
    // feedback store and plan cache.
    taurus::Database db;
    taurus::Status setup = taurus::SetupTpch(&db, sf);
    if (!setup.ok()) {
      std::fprintf(stderr, "TPC-H setup failed: %s\n",
                   setup.ToString().c_str());
      return 1;
    }
    db.feedback_config().enable = true;
    FeedbackRun r =
        MeasureQuery(&db, taurus::TpchQueries()[static_cast<size_t>(number - 1)]);
    all_ok = all_ok && r.ok;
    Report(label, r, &metrics);
  }

  if (json) taurus_bench::WriteBenchJson("feedback", metrics);
  return all_ok ? 0 : 1;
}
