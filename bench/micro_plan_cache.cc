// Micro-benchmarks (google-benchmark) for the skeleton-plan cache: the
// hit-path compile (fingerprint -> lookup -> rewrite replay -> thaw ->
// refine) against the cold compile (full optimizer run) on TPC-H shapes,
// for both optimizer routes, plus the fingerprint and freeze/thaw
// primitives in isolation. The headline ratio is cold / hit per query —
// the optimizer work the cache amortizes away on repeated statements.
//
// --json writes BENCH_plan_cache.json (flat name -> ms/iter map) for CI
// trending; other flags pass through to google-benchmark.

#include <benchmark/benchmark.h>

#include "bench_json_reporter.h"

#include <chrono>

#include "engine/plan_cache.h"
#include "frontend/fingerprint.h"
#include "frontend/prepare.h"
#include "myopt/mysql_optimizer.h"
#include "parser/parser.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    auto st = SetupTpch(d, 0.001);
    if (!st.ok()) std::abort();
    return d;
  }();
  return db;
}

// Representative TPC-H shapes: Q1 (scan+agg), Q3 (3-way join), Q5 (6-way
// join), Q7/Q8/Q9 (big multi-way joins where the memo search dominates),
// Q10 (4-way join + agg), Q21 (4-way join + two correlated subqueries).
const std::string& TpchQ(int q) {
  return TpchQueries()[static_cast<size_t>(q - 1)];
}

void BM_ColdCompile(benchmark::State& state) {
  Database* db = SharedDb();
  const std::string& sql = TpchQ(static_cast<int>(state.range(0)));
  auto path = static_cast<OptimizerPath>(state.range(1));
  db->plan_cache_config().enable = false;  // every compile is cold
  for (auto _ : state) {
    auto c = db->Compile(sql, path);
    benchmark::DoNotOptimize(c);
  }
  db->plan_cache_config().enable = true;
}

void BM_CacheHitCompile(benchmark::State& state) {
  Database* db = SharedDb();
  const std::string& sql = TpchQ(static_cast<int>(state.range(0)));
  auto path = static_cast<OptimizerPath>(state.range(1));
  db->plan_cache_config().enable = true;
  db->plan_cache().Clear();
  {
    auto warmup = db->Compile(sql, path);  // populate the entry
    if (!warmup.ok()) std::abort();
  }
  double saved_ms = 0.0;
  int64_t iters = 0;
  for (auto _ : state) {
    auto c = db->Compile(sql, path);
    benchmark::DoNotOptimize(c);
    if (c.ok()) {
      if (!(*c)->plan_cache_hit) std::abort();  // bench must measure hits
      saved_ms += (*c)->optimize_saved_ms;
      ++iters;
    }
  }
  if (iters > 0) {
    state.counters["avg_saved_ms"] = saved_ms / static_cast<double>(iters);
  }
}

void PlanCacheArgs(benchmark::internal::Benchmark* b) {
  for (int q : {1, 3, 5, 7, 8, 9, 10, 21}) {
    b->Args({q, static_cast<int>(OptimizerPath::kMySql)});
    b->Args({q, static_cast<int>(OptimizerPath::kOrca)});
  }
}

BENCHMARK(BM_ColdCompile)->Apply(PlanCacheArgs);
BENCHMARK(BM_CacheHitCompile)->Apply(PlanCacheArgs);

// The headline number: optimizer-stage time, cold vs hit. Every compile
// pays for parse + bind + prepare whether or not the cache hits, so the
// end-to-end compile ratio understates what the cache saves. Here the
// front-end cost is measured on its own and subtracted from both sides,
// leaving cold = join ordering + access-path search (+ Orca detour) and
// hit = fingerprint + lookup + rewrite replay + thaw + refine.
void BM_OptimizeSpeedup(benchmark::State& state) {
  Database* db = SharedDb();
  const std::string& sql = TpchQ(static_cast<int>(state.range(0)));
  auto path = static_cast<OptimizerPath>(state.range(1));
  constexpr int kReps = 64;
  double frontend_ms = 0, cold_ms = 0, hit_ms = 0;
  int64_t experiments = 0;
  for (auto _ : state) {
    using Clock = std::chrono::steady_clock;
    auto ms = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    auto t0 = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      auto parsed = ParseSelect(sql);
      auto bound = BindStatement(db->catalog(), std::move(*parsed));
      if (!PrepareStatement(&*bound).ok()) std::abort();
      benchmark::DoNotOptimize(bound);
    }
    auto t1 = Clock::now();
    db->plan_cache_config().enable = false;
    for (int i = 0; i < kReps; ++i) {
      auto c = db->Compile(sql, path);
      benchmark::DoNotOptimize(c);
    }
    auto t2 = Clock::now();
    db->plan_cache_config().enable = true;
    db->plan_cache().Clear();
    if (!db->Compile(sql, path).ok()) std::abort();  // populate entry
    auto t3 = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      auto c = db->Compile(sql, path);
      benchmark::DoNotOptimize(c);
      if (!c.ok() || !(*c)->plan_cache_hit) std::abort();
    }
    auto t4 = Clock::now();
    frontend_ms += ms(t0, t1) / kReps;
    cold_ms += ms(t1, t2) / kReps;
    hit_ms += ms(t3, t4) / kReps;
    ++experiments;
  }
  if (experiments > 0) {
    double fe = frontend_ms / experiments;
    double cold_opt = cold_ms / experiments - fe;
    double hit_opt = hit_ms / experiments - fe;
    state.counters["cold_opt_ms"] = cold_opt;
    state.counters["hit_opt_ms"] = hit_opt;
    state.counters["speedup"] = hit_opt > 0 ? cold_opt / hit_opt : 0.0;
  }
}
BENCHMARK(BM_OptimizeSpeedup)->Apply(PlanCacheArgs);

void BM_Fingerprint(benchmark::State& state) {
  Database* db = SharedDb();
  auto parsed = ParseSelect(TpchQ(5));
  auto bound = BindStatement(db->catalog(), std::move(*parsed));
  BoundStatement stmt = std::move(*bound);
  if (!PrepareStatement(&stmt).ok()) std::abort();
  for (auto _ : state) {
    auto fp = FingerprintStatement(stmt);
    benchmark::DoNotOptimize(fp);
  }
}
BENCHMARK(BM_Fingerprint);

void BM_FreezeThaw(benchmark::State& state) {
  Database* db = SharedDb();
  auto parsed = ParseSelect(TpchQ(5));
  auto bound = BindStatement(db->catalog(), std::move(*parsed));
  BoundStatement stmt = std::move(*bound);
  if (!PrepareStatement(&stmt).ok()) std::abort();
  auto skel = MySqlOptimize(db->catalog(), &stmt);
  if (!skel.ok()) std::abort();
  auto frozen = FreezeSkeleton(**skel);
  if (!frozen.ok()) std::abort();
  for (auto _ : state) {
    auto thawed = ThawSkeleton(*frozen, stmt);
    benchmark::DoNotOptimize(thawed);
  }
}
BENCHMARK(BM_FreezeThaw);

}  // namespace
}  // namespace taurus

int main(int argc, char** argv) {
  return taurus_bench::GBenchJsonMain(argc, argv, "plan_cache");
}
