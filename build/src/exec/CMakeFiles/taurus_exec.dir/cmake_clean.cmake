file(REMOVE_RECURSE
  "CMakeFiles/taurus_exec.dir/block_executor.cc.o"
  "CMakeFiles/taurus_exec.dir/block_executor.cc.o.d"
  "CMakeFiles/taurus_exec.dir/expr_eval.cc.o"
  "CMakeFiles/taurus_exec.dir/expr_eval.cc.o.d"
  "libtaurus_exec.a"
  "libtaurus_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
