file(REMOVE_RECURSE
  "libtaurus_exec.a"
)
