# Empty compiler generated dependencies file for taurus_exec.
# This may be replaced when dependencies are built.
