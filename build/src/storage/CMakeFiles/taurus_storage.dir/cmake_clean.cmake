file(REMOVE_RECURSE
  "CMakeFiles/taurus_storage.dir/ordered_index.cc.o"
  "CMakeFiles/taurus_storage.dir/ordered_index.cc.o.d"
  "CMakeFiles/taurus_storage.dir/storage.cc.o"
  "CMakeFiles/taurus_storage.dir/storage.cc.o.d"
  "CMakeFiles/taurus_storage.dir/table_data.cc.o"
  "CMakeFiles/taurus_storage.dir/table_data.cc.o.d"
  "libtaurus_storage.a"
  "libtaurus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
