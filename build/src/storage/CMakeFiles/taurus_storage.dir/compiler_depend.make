# Empty compiler generated dependencies file for taurus_storage.
# This may be replaced when dependencies are built.
