file(REMOVE_RECURSE
  "libtaurus_storage.a"
)
