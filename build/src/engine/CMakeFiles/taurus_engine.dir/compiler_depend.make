# Empty compiler generated dependencies file for taurus_engine.
# This may be replaced when dependencies are built.
