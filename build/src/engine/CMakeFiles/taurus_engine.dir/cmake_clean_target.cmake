file(REMOVE_RECURSE
  "libtaurus_engine.a"
)
