file(REMOVE_RECURSE
  "CMakeFiles/taurus_engine.dir/database.cc.o"
  "CMakeFiles/taurus_engine.dir/database.cc.o.d"
  "CMakeFiles/taurus_engine.dir/explain.cc.o"
  "CMakeFiles/taurus_engine.dir/explain.cc.o.d"
  "libtaurus_engine.a"
  "libtaurus_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
