# Empty dependencies file for taurus_bridge.
# This may be replaced when dependencies are built.
