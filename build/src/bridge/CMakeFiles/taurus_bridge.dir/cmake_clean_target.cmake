file(REMOVE_RECURSE
  "libtaurus_bridge.a"
)
