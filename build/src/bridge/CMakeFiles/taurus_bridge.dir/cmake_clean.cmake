file(REMOVE_RECURSE
  "CMakeFiles/taurus_bridge.dir/decorrelate.cc.o"
  "CMakeFiles/taurus_bridge.dir/decorrelate.cc.o.d"
  "CMakeFiles/taurus_bridge.dir/orca_path.cc.o"
  "CMakeFiles/taurus_bridge.dir/orca_path.cc.o.d"
  "CMakeFiles/taurus_bridge.dir/parse_tree_converter.cc.o"
  "CMakeFiles/taurus_bridge.dir/parse_tree_converter.cc.o.d"
  "CMakeFiles/taurus_bridge.dir/plan_converter.cc.o"
  "CMakeFiles/taurus_bridge.dir/plan_converter.cc.o.d"
  "CMakeFiles/taurus_bridge.dir/router.cc.o"
  "CMakeFiles/taurus_bridge.dir/router.cc.o.d"
  "libtaurus_bridge.a"
  "libtaurus_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
