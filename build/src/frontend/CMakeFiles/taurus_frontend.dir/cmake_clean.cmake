file(REMOVE_RECURSE
  "CMakeFiles/taurus_frontend.dir/binder.cc.o"
  "CMakeFiles/taurus_frontend.dir/binder.cc.o.d"
  "CMakeFiles/taurus_frontend.dir/normalize.cc.o"
  "CMakeFiles/taurus_frontend.dir/normalize.cc.o.d"
  "CMakeFiles/taurus_frontend.dir/prepare.cc.o"
  "CMakeFiles/taurus_frontend.dir/prepare.cc.o.d"
  "libtaurus_frontend.a"
  "libtaurus_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
