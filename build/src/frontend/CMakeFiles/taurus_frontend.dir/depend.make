# Empty dependencies file for taurus_frontend.
# This may be replaced when dependencies are built.
