file(REMOVE_RECURSE
  "libtaurus_frontend.a"
)
