file(REMOVE_RECURSE
  "libtaurus_myopt.a"
)
