# Empty dependencies file for taurus_myopt.
# This may be replaced when dependencies are built.
