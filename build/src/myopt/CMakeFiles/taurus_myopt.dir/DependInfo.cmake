
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/myopt/cardinality.cc" "src/myopt/CMakeFiles/taurus_myopt.dir/cardinality.cc.o" "gcc" "src/myopt/CMakeFiles/taurus_myopt.dir/cardinality.cc.o.d"
  "/root/repo/src/myopt/join_graph.cc" "src/myopt/CMakeFiles/taurus_myopt.dir/join_graph.cc.o" "gcc" "src/myopt/CMakeFiles/taurus_myopt.dir/join_graph.cc.o.d"
  "/root/repo/src/myopt/mysql_optimizer.cc" "src/myopt/CMakeFiles/taurus_myopt.dir/mysql_optimizer.cc.o" "gcc" "src/myopt/CMakeFiles/taurus_myopt.dir/mysql_optimizer.cc.o.d"
  "/root/repo/src/myopt/refine.cc" "src/myopt/CMakeFiles/taurus_myopt.dir/refine.cc.o" "gcc" "src/myopt/CMakeFiles/taurus_myopt.dir/refine.cc.o.d"
  "/root/repo/src/myopt/skeleton.cc" "src/myopt/CMakeFiles/taurus_myopt.dir/skeleton.cc.o" "gcc" "src/myopt/CMakeFiles/taurus_myopt.dir/skeleton.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/taurus_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/taurus_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/taurus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/taurus_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/taurus_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/taurus_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/taurus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
