file(REMOVE_RECURSE
  "CMakeFiles/taurus_myopt.dir/cardinality.cc.o"
  "CMakeFiles/taurus_myopt.dir/cardinality.cc.o.d"
  "CMakeFiles/taurus_myopt.dir/join_graph.cc.o"
  "CMakeFiles/taurus_myopt.dir/join_graph.cc.o.d"
  "CMakeFiles/taurus_myopt.dir/mysql_optimizer.cc.o"
  "CMakeFiles/taurus_myopt.dir/mysql_optimizer.cc.o.d"
  "CMakeFiles/taurus_myopt.dir/refine.cc.o"
  "CMakeFiles/taurus_myopt.dir/refine.cc.o.d"
  "CMakeFiles/taurus_myopt.dir/skeleton.cc.o"
  "CMakeFiles/taurus_myopt.dir/skeleton.cc.o.d"
  "libtaurus_myopt.a"
  "libtaurus_myopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_myopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
