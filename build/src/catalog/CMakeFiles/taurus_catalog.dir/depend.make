# Empty dependencies file for taurus_catalog.
# This may be replaced when dependencies are built.
