file(REMOVE_RECURSE
  "CMakeFiles/taurus_catalog.dir/catalog.cc.o"
  "CMakeFiles/taurus_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/taurus_catalog.dir/histogram.cc.o"
  "CMakeFiles/taurus_catalog.dir/histogram.cc.o.d"
  "libtaurus_catalog.a"
  "libtaurus_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
