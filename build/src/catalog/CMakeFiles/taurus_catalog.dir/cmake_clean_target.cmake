file(REMOVE_RECURSE
  "libtaurus_catalog.a"
)
