# Empty compiler generated dependencies file for taurus_types.
# This may be replaced when dependencies are built.
