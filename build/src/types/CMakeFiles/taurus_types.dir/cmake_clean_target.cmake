file(REMOVE_RECURSE
  "libtaurus_types.a"
)
