file(REMOVE_RECURSE
  "CMakeFiles/taurus_types.dir/datetime.cc.o"
  "CMakeFiles/taurus_types.dir/datetime.cc.o.d"
  "CMakeFiles/taurus_types.dir/type.cc.o"
  "CMakeFiles/taurus_types.dir/type.cc.o.d"
  "CMakeFiles/taurus_types.dir/value.cc.o"
  "CMakeFiles/taurus_types.dir/value.cc.o.d"
  "libtaurus_types.a"
  "libtaurus_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
