file(REMOVE_RECURSE
  "CMakeFiles/taurus_parser.dir/ast.cc.o"
  "CMakeFiles/taurus_parser.dir/ast.cc.o.d"
  "CMakeFiles/taurus_parser.dir/ast_util.cc.o"
  "CMakeFiles/taurus_parser.dir/ast_util.cc.o.d"
  "CMakeFiles/taurus_parser.dir/lexer.cc.o"
  "CMakeFiles/taurus_parser.dir/lexer.cc.o.d"
  "CMakeFiles/taurus_parser.dir/parser.cc.o"
  "CMakeFiles/taurus_parser.dir/parser.cc.o.d"
  "libtaurus_parser.a"
  "libtaurus_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
