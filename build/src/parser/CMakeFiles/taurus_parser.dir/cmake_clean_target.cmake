file(REMOVE_RECURSE
  "libtaurus_parser.a"
)
