# Empty compiler generated dependencies file for taurus_parser.
# This may be replaced when dependencies are built.
