# Empty compiler generated dependencies file for taurus_orca.
# This may be replaced when dependencies are built.
