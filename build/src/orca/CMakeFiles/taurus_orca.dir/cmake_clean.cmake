file(REMOVE_RECURSE
  "CMakeFiles/taurus_orca.dir/logical.cc.o"
  "CMakeFiles/taurus_orca.dir/logical.cc.o.d"
  "CMakeFiles/taurus_orca.dir/optimizer.cc.o"
  "CMakeFiles/taurus_orca.dir/optimizer.cc.o.d"
  "CMakeFiles/taurus_orca.dir/physical.cc.o"
  "CMakeFiles/taurus_orca.dir/physical.cc.o.d"
  "libtaurus_orca.a"
  "libtaurus_orca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_orca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
