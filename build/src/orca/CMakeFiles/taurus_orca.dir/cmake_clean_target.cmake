file(REMOVE_RECURSE
  "libtaurus_orca.a"
)
