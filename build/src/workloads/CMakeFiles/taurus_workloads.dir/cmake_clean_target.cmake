file(REMOVE_RECURSE
  "libtaurus_workloads.a"
)
