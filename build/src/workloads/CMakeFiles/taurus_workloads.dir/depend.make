# Empty dependencies file for taurus_workloads.
# This may be replaced when dependencies are built.
