file(REMOVE_RECURSE
  "CMakeFiles/taurus_workloads.dir/tpcds.cc.o"
  "CMakeFiles/taurus_workloads.dir/tpcds.cc.o.d"
  "CMakeFiles/taurus_workloads.dir/tpcds_queries.cc.o"
  "CMakeFiles/taurus_workloads.dir/tpcds_queries.cc.o.d"
  "CMakeFiles/taurus_workloads.dir/tpch.cc.o"
  "CMakeFiles/taurus_workloads.dir/tpch.cc.o.d"
  "CMakeFiles/taurus_workloads.dir/tpch_queries.cc.o"
  "CMakeFiles/taurus_workloads.dir/tpch_queries.cc.o.d"
  "libtaurus_workloads.a"
  "libtaurus_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
