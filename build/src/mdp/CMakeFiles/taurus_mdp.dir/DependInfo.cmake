
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdp/oid_layout.cc" "src/mdp/CMakeFiles/taurus_mdp.dir/oid_layout.cc.o" "gcc" "src/mdp/CMakeFiles/taurus_mdp.dir/oid_layout.cc.o.d"
  "/root/repo/src/mdp/provider.cc" "src/mdp/CMakeFiles/taurus_mdp.dir/provider.cc.o" "gcc" "src/mdp/CMakeFiles/taurus_mdp.dir/provider.cc.o.d"
  "/root/repo/src/mdp/stats_adapter.cc" "src/mdp/CMakeFiles/taurus_mdp.dir/stats_adapter.cc.o" "gcc" "src/mdp/CMakeFiles/taurus_mdp.dir/stats_adapter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/taurus_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/taurus_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/myopt/CMakeFiles/taurus_myopt.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/taurus_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/taurus_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/taurus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/taurus_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/taurus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
