file(REMOVE_RECURSE
  "libtaurus_mdp.a"
)
