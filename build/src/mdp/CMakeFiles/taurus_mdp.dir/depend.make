# Empty dependencies file for taurus_mdp.
# This may be replaced when dependencies are built.
