file(REMOVE_RECURSE
  "CMakeFiles/taurus_mdp.dir/oid_layout.cc.o"
  "CMakeFiles/taurus_mdp.dir/oid_layout.cc.o.d"
  "CMakeFiles/taurus_mdp.dir/provider.cc.o"
  "CMakeFiles/taurus_mdp.dir/provider.cc.o.d"
  "CMakeFiles/taurus_mdp.dir/stats_adapter.cc.o"
  "CMakeFiles/taurus_mdp.dir/stats_adapter.cc.o.d"
  "libtaurus_mdp.a"
  "libtaurus_mdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
