# Empty compiler generated dependencies file for taurus_common.
# This may be replaced when dependencies are built.
