file(REMOVE_RECURSE
  "libtaurus_common.a"
)
