file(REMOVE_RECURSE
  "CMakeFiles/taurus_common.dir/status.cc.o"
  "CMakeFiles/taurus_common.dir/status.cc.o.d"
  "CMakeFiles/taurus_common.dir/strings.cc.o"
  "CMakeFiles/taurus_common.dir/strings.cc.o.d"
  "libtaurus_common.a"
  "libtaurus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taurus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
