file(REMOVE_RECURSE
  "CMakeFiles/fig11_tpcds.dir/fig11_tpcds.cc.o"
  "CMakeFiles/fig11_tpcds.dir/fig11_tpcds.cc.o.d"
  "fig11_tpcds"
  "fig11_tpcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tpcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
