# Empty dependencies file for fig11_tpcds.
# This may be replaced when dependencies are built.
