file(REMOVE_RECURSE
  "CMakeFiles/ablation_lessons.dir/ablation_lessons.cc.o"
  "CMakeFiles/ablation_lessons.dir/ablation_lessons.cc.o.d"
  "ablation_lessons"
  "ablation_lessons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lessons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
