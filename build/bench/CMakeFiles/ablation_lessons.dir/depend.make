# Empty dependencies file for ablation_lessons.
# This may be replaced when dependencies are built.
