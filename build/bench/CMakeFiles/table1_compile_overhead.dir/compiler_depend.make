# Empty compiler generated dependencies file for table1_compile_overhead.
# This may be replaced when dependencies are built.
