file(REMOVE_RECURSE
  "CMakeFiles/fig12_short_queries.dir/fig12_short_queries.cc.o"
  "CMakeFiles/fig12_short_queries.dir/fig12_short_queries.cc.o.d"
  "fig12_short_queries"
  "fig12_short_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_short_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
