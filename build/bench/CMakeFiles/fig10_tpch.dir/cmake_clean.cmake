file(REMOVE_RECURSE
  "CMakeFiles/fig10_tpch.dir/fig10_tpch.cc.o"
  "CMakeFiles/fig10_tpch.dir/fig10_tpch.cc.o.d"
  "fig10_tpch"
  "fig10_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
