# Empty dependencies file for fig06_07_q17_conversion.
# This may be replaced when dependencies are built.
