file(REMOVE_RECURSE
  "CMakeFiles/fig06_07_q17_conversion.dir/fig06_07_q17_conversion.cc.o"
  "CMakeFiles/fig06_07_q17_conversion.dir/fig06_07_q17_conversion.cc.o.d"
  "fig06_07_q17_conversion"
  "fig06_07_q17_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_07_q17_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
