file(REMOVE_RECURSE
  "CMakeFiles/fig04_05_q72_plans.dir/fig04_05_q72_plans.cc.o"
  "CMakeFiles/fig04_05_q72_plans.dir/fig04_05_q72_plans.cc.o.d"
  "fig04_05_q72_plans"
  "fig04_05_q72_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_05_q72_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
