# Empty dependencies file for fig04_05_q72_plans.
# This may be replaced when dependencies are built.
