# Empty dependencies file for oid_layout_test.
# This may be replaced when dependencies are built.
