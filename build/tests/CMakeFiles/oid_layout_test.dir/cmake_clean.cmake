file(REMOVE_RECURSE
  "CMakeFiles/oid_layout_test.dir/oid_layout_test.cc.o"
  "CMakeFiles/oid_layout_test.dir/oid_layout_test.cc.o.d"
  "oid_layout_test"
  "oid_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oid_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
