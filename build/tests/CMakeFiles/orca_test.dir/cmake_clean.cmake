file(REMOVE_RECURSE
  "CMakeFiles/orca_test.dir/orca_test.cc.o"
  "CMakeFiles/orca_test.dir/orca_test.cc.o.d"
  "orca_test"
  "orca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
