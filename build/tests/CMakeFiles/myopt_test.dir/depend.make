# Empty dependencies file for myopt_test.
# This may be replaced when dependencies are built.
