file(REMOVE_RECURSE
  "CMakeFiles/myopt_test.dir/myopt_test.cc.o"
  "CMakeFiles/myopt_test.dir/myopt_test.cc.o.d"
  "myopt_test"
  "myopt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
