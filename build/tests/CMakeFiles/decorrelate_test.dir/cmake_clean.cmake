file(REMOVE_RECURSE
  "CMakeFiles/decorrelate_test.dir/decorrelate_test.cc.o"
  "CMakeFiles/decorrelate_test.dir/decorrelate_test.cc.o.d"
  "decorrelate_test"
  "decorrelate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decorrelate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
