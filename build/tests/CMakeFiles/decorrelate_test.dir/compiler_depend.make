# Empty compiler generated dependencies file for decorrelate_test.
# This may be replaced when dependencies are built.
