# Empty dependencies file for tpcds_test.
# This may be replaced when dependencies are built.
