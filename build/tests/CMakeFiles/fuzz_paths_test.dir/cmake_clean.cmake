file(REMOVE_RECURSE
  "CMakeFiles/fuzz_paths_test.dir/fuzz_paths_test.cc.o"
  "CMakeFiles/fuzz_paths_test.dir/fuzz_paths_test.cc.o.d"
  "fuzz_paths_test"
  "fuzz_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
