# Empty compiler generated dependencies file for fuzz_paths_test.
# This may be replaced when dependencies are built.
