file(REMOVE_RECURSE
  "CMakeFiles/workload_query_test.dir/workload_query_test.cc.o"
  "CMakeFiles/workload_query_test.dir/workload_query_test.cc.o.d"
  "workload_query_test"
  "workload_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
