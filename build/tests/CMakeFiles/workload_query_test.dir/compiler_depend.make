# Empty compiler generated dependencies file for workload_query_test.
# This may be replaced when dependencies are built.
