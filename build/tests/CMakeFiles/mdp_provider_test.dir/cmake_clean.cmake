file(REMOVE_RECURSE
  "CMakeFiles/mdp_provider_test.dir/mdp_provider_test.cc.o"
  "CMakeFiles/mdp_provider_test.dir/mdp_provider_test.cc.o.d"
  "mdp_provider_test"
  "mdp_provider_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
