# Empty dependencies file for mdp_provider_test.
# This may be replaced when dependencies are built.
