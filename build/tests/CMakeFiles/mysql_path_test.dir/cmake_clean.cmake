file(REMOVE_RECURSE
  "CMakeFiles/mysql_path_test.dir/mysql_path_test.cc.o"
  "CMakeFiles/mysql_path_test.dir/mysql_path_test.cc.o.d"
  "mysql_path_test"
  "mysql_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mysql_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
