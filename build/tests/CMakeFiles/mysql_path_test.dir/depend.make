# Empty dependencies file for mysql_path_test.
# This may be replaced when dependencies are built.
