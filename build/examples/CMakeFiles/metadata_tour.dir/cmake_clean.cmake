file(REMOVE_RECURSE
  "CMakeFiles/metadata_tour.dir/metadata_tour.cpp.o"
  "CMakeFiles/metadata_tour.dir/metadata_tour.cpp.o.d"
  "metadata_tour"
  "metadata_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
