# Empty compiler generated dependencies file for metadata_tour.
# This may be replaced when dependencies are built.
